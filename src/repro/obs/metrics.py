"""Low-overhead metrics: counters, gauges, and fixed-bucket histograms.

The registry is the live-telemetry backbone of the reproduction.  Hot
paths (the switch pipeline, the replication engines, the links) hold
*bound instruments* — tiny objects with one method — created once at
construction time, so recording a sample is a single method call with
no name lookup, no dict access, and no allocation.

Observability defaults to **off**: every instrumented component takes a
registry argument defaulting to :data:`NULL_REGISTRY`, whose instrument
factories return shared no-op singletons.  A disabled deployment
therefore pays at most an attribute check per packet (components cache
``registry.enabled`` and skip the call entirely).

Metric naming scheme (see docs/OBSERVABILITY.md):

* dotted lowercase names, ``<subsystem>.<quantity>[_<unit>]`` —
  e.g. ``sro.write_commit_latency_seconds``, ``link.bytes_sent``;
* the emitting entity (switch name, channel ``a->b``, ``controller``)
  goes in the separate ``node`` label, never in the metric name;
* durations are in **seconds** (the simulator's clock unit), sizes in
  bytes.

Histograms use fixed upper-bound buckets (log-spaced over the
simulation's latency range by default) so that p50/p99 are computable
in O(buckets) with zero per-sample allocation, exactly like a hardware
INT sink or a Prometheus client would.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_LATENCY_BOUNDS",
    "load_jsonl",
    "registry_from_records",
]

#: Default histogram bucket upper bounds, in seconds: 200 ns .. 200 ms,
#: roughly 1-2-5 log-spaced.  Spans everything the simulator measures,
#: from one pipeline pass (400 ns) to a failover window (tens of ms).
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    200e-9, 500e-9,
    1e-6, 2e-6, 5e-6,
    10e-6, 20e-6, 50e-6,
    100e-6, 200e-6, 500e-6,
    1e-3, 2e-3, 5e-3,
    10e-3, 20e-3, 50e-3,
    100e-3, 200e-3,
)


class Counter:
    """A monotonically increasing count (packets, bytes, events)."""

    __slots__ = ("name", "node", "value")

    kind = "counter"

    def __init__(self, name: str, node: str = "") -> None:
        self.name = name
        self.node = node
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name, "node": self.node, "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, outstanding writes).

    Tracks the current value plus the maximum ever set, since for
    occupancy-style quantities the high-water mark is usually the
    interesting number at snapshot time.
    """

    __slots__ = ("name", "node", "value", "max_value")

    kind = "gauge"

    def __init__(self, name: str, node: str = "") -> None:
        self.name = name
        self.node = node
        self.value = 0
        self.max_value = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "gauge",
            "name": self.name,
            "node": self.node,
            "value": self.value,
            "max": self.max_value,
        }


class Histogram:
    """A fixed-bucket distribution with cheap percentile estimates.

    ``bounds`` are inclusive upper bucket edges; samples above the last
    bound land in an overflow bucket.  Percentiles interpolate linearly
    within the bucket containing the quantile (the standard
    fixed-bucket estimate, as a Prometheus ``histogram_quantile``
    would), clamped to the exactly tracked ``min``/``max``, so a tail
    readout never overstates by a full bucket width; the overflow
    bucket interpolates toward the observed maximum.
    """

    __slots__ = ("name", "node", "bounds", "buckets", "overflow", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(
        self, name: str, node: str = "", bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.name = name
        self.node = node
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(self.bounds, value)
        if index < len(self.buckets):
            self.buckets[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at quantile ``p`` in [0, 1].

        Linear interpolation within the matched bucket: the quantile's
        fractional position among the bucket's samples picks a point
        between the bucket's lower and upper edges.  The first bucket's
        lower edge is the tracked minimum, and the overflow bucket
        interpolates between the last bound and the tracked maximum;
        the result is clamped to [min, max] so estimates stay inside
        the observed range.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {p}")
        if self.count == 0:
            return 0.0
        rank = p * self.count
        cumulative = 0
        lower = self.min
        for bound, bucket in zip(self.bounds, self.buckets):
            if bucket:
                cumulative += bucket
                if cumulative >= rank:
                    fraction = (rank - (cumulative - bucket)) / bucket
                    value = lower + fraction * (bound - lower)
                    return min(max(value, self.min), self.max)
            lower = bound
        # Quantile lands in the overflow bucket: interpolate toward the
        # exact observed maximum.
        if self.overflow:
            fraction = (rank - cumulative) / self.overflow
            lower = max(self.bounds[-1], self.min)
            value = lower + fraction * (self.max - lower)
            return min(max(value, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "node": self.node,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "overflow": self.overflow,
        }


# ----------------------------------------------------------------------
# No-op instruments: shared singletons so NULL_REGISTRY allocates nothing
# per call site beyond the bound reference itself.
# ----------------------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", bounds=(1.0,))


class MetricsRegistry:
    """Creates, deduplicates, and exports instruments.

    Instruments are keyed by ``(kind, name, node)``: asking twice for
    the same key returns the same object, so independently constructed
    components share counters safely.
    """

    #: Components cache this to skip instrumentation entirely when off.
    enabled = True

    def __init__(self) -> None:
        self._instruments: "Dict[Tuple[str, str, str], Any]" = {}

    # -- factories ------------------------------------------------------
    def counter(self, name: str, node: str = "") -> Counter:
        key = ("counter", name, node)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Counter(name, node)
        return instrument

    def gauge(self, name: str, node: str = "") -> Gauge:
        key = ("gauge", name, node)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Gauge(name, node)
        return instrument

    def histogram(
        self, name: str, node: str = "", bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        key = ("histogram", name, node)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Histogram(name, node, bounds=bounds)
        return instrument

    # -- introspection --------------------------------------------------
    def instruments(self) -> List[Any]:
        """All instruments, sorted by (kind, name, node) for stable output."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def get(self, kind: str, name: str, node: str = "") -> Optional[Any]:
        return self._instruments.get((kind, name, node))

    def value(self, kind: str, name: str, node: str = "", default: float = 0) -> float:
        """Convenience: current value of a counter/gauge (``default`` if absent)."""
        instrument = self.get(kind, name, node)
        return instrument.value if instrument is not None else default

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """A JSON-ready snapshot grouped by instrument kind."""
        grouped: Dict[str, List[Dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": []
        }
        for instrument in self.instruments():
            grouped[instrument.kind + "s"].append(instrument.as_dict())
        return grouped

    def write_jsonl(self, path: str) -> int:
        """Write one JSON record per instrument; returns the record count."""
        instruments = self.instruments()
        with open(path, "w", encoding="utf-8") as handle:
            for instrument in instruments:
                handle.write(json.dumps(instrument.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(instruments)

    # -- aggregation ----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (multi-run aggregation).

        Counters add; gauges keep the maximum (their high-water
        interpretation); histograms add bucket-wise and require
        identical bounds.
        """
        for instrument in other.instruments():
            if instrument.kind == "counter":
                self.counter(instrument.name, instrument.node).inc(instrument.value)
            elif instrument.kind == "gauge":
                mine = self.gauge(instrument.name, instrument.node)
                mine.set(max(mine.value, instrument.value))
                mine.max_value = max(mine.max_value, instrument.max_value)
            else:
                mine = self.histogram(
                    instrument.name, instrument.node, bounds=instrument.bounds
                )
                if mine.bounds != instrument.bounds:
                    raise ValueError(
                        f"histogram {instrument.name!r}/{instrument.node!r}: "
                        "cannot merge differing bucket bounds"
                    )
                mine.count += instrument.count
                mine.sum += instrument.sum
                # Fold min and the exact observed max (which the
                # overflow bucket's percentile estimate reports) only
                # when the other side actually saw samples: an empty
                # histogram round-tripped through as_dict carries
                # min=0.0 / max=0.0 placeholders that must not clobber
                # real extremes.
                if instrument.count:
                    mine.min = min(mine.min, instrument.min)
                    mine.max = max(mine.max, instrument.max)
                mine.overflow += instrument.overflow
                for i, bucket in enumerate(instrument.buckets):
                    mine.buckets[i] += bucket
        return self


class NullRegistry(MetricsRegistry):
    """The default everywhere: hands out no-op singletons, exports nothing."""

    enabled = False

    def counter(self, name: str, node: str = "") -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, node: str = "") -> Gauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, node: str = "", bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        return NULL_HISTOGRAM


#: Shared no-op registry; hot paths bound to it stay effectively free.
NULL_REGISTRY = NullRegistry()


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read back a :meth:`MetricsRegistry.write_jsonl` export."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def registry_from_records(records: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a live registry from :func:`load_jsonl` records.

    The inverse of :meth:`MetricsRegistry.write_jsonl` /
    :meth:`~MetricsRegistry.snapshot` for every field the instruments
    persist, so ``load_jsonl -> registry_from_records -> merge ->
    snapshot`` round-trips multi-run aggregation.  Empty histograms get
    their ``min`` restored to the live-instrument sentinel (``inf``)
    rather than the serialized 0.0, so merging real samples into a
    reconstructed registry keeps the true minimum.
    """
    registry = MetricsRegistry()
    for record in records:
        kind = record["kind"]
        if kind == "counter":
            registry.counter(record["name"], record["node"]).inc(record["value"])
        elif kind == "gauge":
            gauge = registry.gauge(record["name"], record["node"])
            gauge.set(record["value"])
            gauge.max_value = max(gauge.max_value, record["max"])
        elif kind == "histogram":
            histogram = registry.histogram(
                record["name"], record["node"], bounds=tuple(record["bounds"])
            )
            histogram.count = record["count"]
            histogram.sum = record["sum"]
            histogram.min = record["min"] if record["count"] else float("inf")
            histogram.max = record["max"]
            histogram.buckets = list(record["buckets"])
            histogram.overflow = record["overflow"]
        else:
            raise ValueError(f"unknown instrument kind {kind!r}")
    return registry
