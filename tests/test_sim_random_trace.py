"""Tests for seeded RNG streams and the tracer."""

from __future__ import annotations

import pytest

from repro.sim.random import SeededRng, derive_seed
from repro.sim.trace import NULL_TRACER, Tracer


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42).stream("x")
        b = SeededRng(42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        rng = SeededRng(42)
        xs = [rng.stream("x").random() for _ in range(5)]
        ys = [rng.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_stream_cached(self):
        rng = SeededRng(0)
        assert rng.stream("a") is rng.stream("a")

    def test_adding_stream_does_not_perturb_existing(self):
        rng1 = SeededRng(7)
        first = rng1.stream("workload")
        seq1 = [first.random() for _ in range(3)]
        rng2 = SeededRng(7)
        rng2.stream("brand-new-consumer").random()  # extra stream created first
        seq2 = [rng2.stream("workload").random() for _ in range(3)]
        assert seq1 == seq2

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fork_is_independent(self):
        root = SeededRng(9)
        child = root.fork("switch0")
        assert child.seed != root.seed
        assert root.fork("switch0").seed == child.seed

    def test_helpers(self):
        rng = SeededRng(5)
        assert 0.0 <= rng.random() < 1.0
        assert 1 <= rng.randint(1, 3) <= 3
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        assert 2.0 <= rng.uniform(2.0, 4.0) <= 4.0
        assert rng.expovariate(100.0) > 0.0
        sample = rng.sample(list(range(10)), 3)
        assert len(sample) == 3
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))


class TestTracer:
    def test_records_everything_by_default(self):
        tracer = Tracer()
        tracer.emit(1.0, "fwd", "s0", "tx", pkt=1)
        tracer.emit(2.0, "drop", "s1", "loss")
        assert len(tracer) == 2

    def test_category_filter(self):
        tracer = Tracer(categories={"drop"})
        tracer.emit(1.0, "fwd", "s0", "tx")
        tracer.emit(2.0, "drop", "s1", "loss")
        assert len(tracer) == 1
        assert tracer.records[0].category == "drop"

    def test_null_tracer_records_nothing(self):
        NULL_TRACER.emit(1.0, "anything", "s0", "msg")
        assert len(NULL_TRACER) == 0

    def test_by_category_and_node(self):
        tracer = Tracer()
        tracer.emit(1.0, "fwd", "s0", "a")
        tracer.emit(2.0, "fwd", "s1", "b")
        tracer.emit(3.0, "drop", "s0", "c")
        assert len(tracer.by_category("fwd")) == 2
        assert len(tracer.by_node("s0")) == 2

    def test_sink_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(seen.append)
        tracer.emit(1.0, "x", "n", "m")
        assert len(seen) == 1

    def test_record_str_includes_fields(self):
        tracer = Tracer()
        tracer.emit(1e-6, "fwd", "s0", "tx", pkt=7)
        text = str(tracer.records[0])
        assert "s0" in text and "fwd" in text and "pkt=7" in text

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x", "n", "m")
        tracer.clear()
        assert len(tracer) == 0
