#!/usr/bin/env python
"""The "one big switch" abstraction end to end (paper sections 5 and 9).

Writes a *single-switch* program — it declares registers and processes
packets with no notion of replication — and lets the compiler layer
distribute it across a fabric.  Then uses the access profiler to
reproduce the paper's register-type analysis: measure each register's
access pattern and check that the paper's recommendation rule picks the
type the program's author chose.

Run:  python examples/one_big_switch.py
"""

from repro import (
    AccessProfiler,
    Consistency,
    Decision,
    EwoMode,
    PisaSwitch,
    RegisterSpec,
    SeededRng,
    SingleSwitchProgram,
    Simulator,
    SwiShmemDeployment,
    Topology,
    build_full_mesh,
    distribute,
    recommend_consistency,
)
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet


class FlowAuditor(SingleSwitchProgram):
    """A toy NF written for one logical switch.

    Tracks per-flow first-seen records (strong: a flow must not be
    'new' on two switches) and per-source packet counters (weak:
    volume statistics tolerate approximation).
    """

    def registers(self):
        return [
            RegisterSpec("first_seen", Consistency.SRO, capacity=1024),
            RegisterSpec(
                "volume", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=1024
            ),
        ]

    def process(self, ctx, handles):
        packet = ctx.packet
        flow = packet.five_tuple()
        if flow is None:
            return Decision.forward()
        handles["volume"].increment(packet.ipv4.src, packet.wire_size)
        if handles["first_seen"].read(flow.as_tuple()) is None:
            handles["first_seen"].write(flow.as_tuple(), ctx.now)
        return Decision.forward()


def main() -> None:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed=5))
    book = AddressBook()
    switches = build_full_mesh(topo, lambda name: PisaSwitch(name, sim), 3)
    hosts = []
    for i, switch in enumerate(switches):
        host = topo.add_node(EndHost(f"h{i}", sim, f"10.0.0.{i + 1}", book))
        topo.connect(host.name, switch.name)
        hosts.append(host)
    deployment = SwiShmemDeployment(sim, topo, switches, address_book=book)

    # One call distributes the single-switch program everywhere.
    adapters = distribute(FlowAuditor, deployment)
    print(f"distributed FlowAuditor onto {len(adapters)} switches\n")

    profiler = AccessProfiler(deployment)
    # traffic between all host pairs, entering at different switches
    count = 0
    for round_index in range(20):
        for src in hosts:
            for dst in hosts:
                if src is dst:
                    continue
                count += 1
                sim.schedule(
                    round_index * 1e-3 + count * 7e-6,
                    lambda s=src, d=dst: s.inject(
                        make_udp_packet(s.ip, d.ip, 40000 + count % 7, 443, payload_size=120)
                    ),
                )
    sim.run(until=0.05)
    injected = sum(h.sent_count for h in hosts)

    volume_spec = deployment.spec_by_name("volume")
    first_seen_spec = deployment.spec_by_name("first_seen")
    merged = deployment.managers["s0"].ewo.local_state(volume_spec.group_id)
    table = deployment.sro_stores(first_seen_spec)[0]
    print(f"injected {injected} packets; "
          f"{len(table)} distinct flows recorded (strong table), "
          f"volume tracked for {len(merged)} sources (weak counters)\n")

    print("access-pattern analysis (the Table 1 method):")
    needs_strong = {"first_seen": True, "volume": False}
    for profile in profiler.profiles(needs_strong=needs_strong, packets=injected):
        write_label, read_label = profile.frequency_label(
            per_packet_threshold=0.4, occasional_threshold=0.02
        )
        recommended = recommend_consistency(profile, write_intensive_threshold=0.4)
        chosen = deployment.spec_by_name(profile.group_name).consistency
        verdict = "matches author's choice" if recommended is chosen else "DIFFERS"
        print(f"  {profile.group_name:<12} writes: {write_label:<15} "
              f"reads: {read_label:<13} -> recommend {recommended.value.upper()} "
              f"({verdict})")


if __name__ == "__main__":
    main()
