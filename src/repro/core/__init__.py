"""SwiShmem core: register abstractions, per-switch runtime, deployment facade."""

from repro.core.chain import ChainDescriptor
from repro.core.compiler import (
    AccessProfile,
    AccessProfiler,
    SingleSwitchProgram,
    distribute,
    recommend_consistency,
)
from repro.core.directory import DirectoryService, MigrationRecord, PlacementEntry
from repro.core.manager import (
    Decision,
    PacketContext,
    SwiShmemDeployment,
    SwiShmemManager,
)
from repro.core.merge import (
    is_mergeable,
    merge_counter_vectors,
    merge_last_writer_wins,
    merge_value,
)
from repro.core.pending import PendingTable, stable_slot_hash
from repro.core.registers import (
    Consistency,
    EwoMode,
    FetchAdd,
    ReadForwarded,
    RegisterHandle,
    RegisterSpec,
    WriteError,
)

__all__ = [
    "ChainDescriptor",
    "AccessProfile",
    "AccessProfiler",
    "SingleSwitchProgram",
    "distribute",
    "recommend_consistency",
    "DirectoryService",
    "MigrationRecord",
    "PlacementEntry",
    "Decision",
    "PacketContext",
    "SwiShmemDeployment",
    "SwiShmemManager",
    "is_mergeable",
    "merge_counter_vectors",
    "merge_last_writer_wins",
    "merge_value",
    "PendingTable",
    "stable_slot_hash",
    "Consistency",
    "EwoMode",
    "FetchAdd",
    "ReadForwarded",
    "RegisterHandle",
    "RegisterSpec",
    "WriteError",
]
