"""Intrusion Prevention System (Table 1, row 3).

"IPS monitor traffic by continuously computing packet signatures and
matching against known suspicious signatures.  In case of too many
matches, traffic is dropped to prevent the intrusion.  This application
can tolerate some transient inconsistencies: it is acceptable for a few
additional malicious packets to go through immediately after signatures
are updated." (paper section 4.1)

Shared state:
  * ``ips_signatures`` — **ERO** (read on every packet, written rarely
    and only by the operator's control plane; Table 1 marks the
    consistency requirement *weak*, so the cheaper always-local-read
    variant fits exactly);
  * ``ips_matches`` — **EWO counter**: per-source match counts, so all
    switches share the "too many matches" view.

The packet *signature* is computed from header fields plus a payload
digest the workload attaches (``packet.meta`` would not survive
re-parsing, so workloads stamp ``payload_digest`` into the TCP/UDP
payload model via :func:`packet_signature`'s inputs).

Sources whose aggregate match count crosses ``block_threshold`` have all
their traffic dropped.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction

__all__ = ["IpsNF", "packet_signature"]


def packet_signature(packet: Packet) -> int:
    """A stable 32-bit signature over the packet's identifying content.

    Real IPSes hash payload bytes; the simulation hashes the protocol,
    destination port, and ``packet.payload_digest`` — the workload's
    stand-in for payload content (falling back to the payload size).
    """
    if packet.ipv4 is None:
        return 0
    l4 = packet.tcp if packet.tcp is not None else packet.udp
    dst_port = l4.dst_port if l4 is not None else 0
    digest_seed = (
        packet.payload_digest if packet.payload_digest is not None else packet.payload_size
    )
    material = f"{packet.ipv4.protocol}:{dst_port}:{digest_seed}"
    return int.from_bytes(
        hashlib.blake2b(material.encode("utf-8"), digest_size=4).digest(), "big"
    )


class IpsNF(NetworkFunction):
    """Distributed IPS: ERO signature set + EWO match counters."""

    NAME = "ips"

    def __init__(self, manager, handles, *, block_threshold: int = 10,
                 capacity: int = 4096, signature_store: str = "ero") -> None:
        super().__init__(manager, handles)
        self.block_threshold = block_threshold
        self.signature_store = signature_store
        self.signatures = handles["ips_signatures"]
        self.matches = handles["ips_matches"]
        self.signature_hits = 0
        self.blocked_packets = 0

    @classmethod
    def build_specs(cls, *, block_threshold: int = 10, capacity: int = 4096,
                    signature_store: str = "ero") -> List[RegisterSpec]:
        """``signature_store`` selects the signature set's backing:

        * ``"ero"`` — per-signature boolean registers on the chain
          (the Table 1 mapping: rare operator writes, weak reads);
        * ``"orset"`` — a replicated OR-Set (the section 6.2 open
          question): adds/removes converge without the chain, and
          concurrent re-adds survive concurrent removes.
        """
        if signature_store == "orset":
            signature_spec = RegisterSpec(
                name="ips_signatures",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.ORSET,
                capacity=16,
                key_bytes=4,
                value_bytes=capacity // 8,  # elements budgeted per set
            )
        elif signature_store == "ero":
            signature_spec = RegisterSpec(
                name="ips_signatures",
                consistency=Consistency.ERO,
                capacity=capacity,
                key_bytes=4,
                value_bytes=1,
            )
        else:
            raise ValueError(f"unknown signature store {signature_store!r}")
        return [
            signature_spec,
            RegisterSpec(
                name="ips_matches",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=capacity,
                key_bytes=8,
                value_bytes=4,
            ),
        ]

    # ------------------------------------------------------------------
    # Operator API (control plane): manage the signature set
    # ------------------------------------------------------------------
    def add_signature(self, signature: int) -> None:
        """Install a suspicious signature (control-plane operation)."""
        if self.signature_store == "orset":
            self.signatures.add("active", signature)
        else:
            self.signatures.write(signature, True)

    def remove_signature(self, signature: int) -> None:
        if self.signature_store == "orset":
            self.signatures.discard("active", signature)
        else:
            self.signatures.write(signature, False)

    def _signature_matches(self, signature: int) -> bool:
        if self.signature_store == "orset":
            return self.signatures.contains("active", signature)
        return bool(self.signatures.read(signature))

    # ------------------------------------------------------------------
    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        if packet.ipv4 is None:
            return self.forward()
        source = packet.ipv4.src
        if self.matches.read(source, 0) >= self.block_threshold:
            self.blocked_packets += 1
            return self.drop()
        signature = packet_signature(packet)
        if self._signature_matches(signature):
            self.signature_hits += 1
            total = self.matches.increment(source)
            if total >= self.block_threshold:
                self.blocked_packets += 1
                return self.drop()
            # Below threshold: the suspicious packet itself is dropped,
            # but the source is not yet blocked wholesale.
            return self.drop()
        return self.forward()
