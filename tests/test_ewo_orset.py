"""Tests for the OR-Set EWO register mode (the section 6.2 open question)."""

from __future__ import annotations

import pytest

from repro.core.registers import Consistency, EwoMode, RegisterSpec


def declare_set(deployment, name="sigs", **kwargs):
    return deployment.declare(
        RegisterSpec(name, Consistency.EWO, ewo_mode=EwoMode.ORSET,
                     capacity=64, **kwargs)
    )


class TestLocalOps:
    def test_add_and_contains(self, deployment):
        spec = declare_set(deployment)
        m0 = deployment.manager("s0")
        m0.register_set_add(spec, "sigs", 0xBAD)
        assert m0.register_set_contains(spec, "sigs", 0xBAD)
        assert not m0.register_set_contains(spec, "sigs", 0xF00D)

    def test_read_returns_elements(self, deployment):
        spec = declare_set(deployment)
        m0 = deployment.manager("s0")
        m0.register_set_add(spec, "sigs", 1)
        m0.register_set_add(spec, "sigs", 2)
        assert m0.register_read(spec, "sigs", None) == frozenset({1, 2})
        assert m0.register_read(spec, "empty", None) == frozenset()

    def test_remove(self, deployment):
        spec = declare_set(deployment)
        m0 = deployment.manager("s0")
        m0.register_set_add(spec, "sigs", 1)
        assert m0.register_set_remove(spec, "sigs", 1) is True
        assert m0.register_set_remove(spec, "sigs", 1) is False
        assert not m0.register_set_contains(spec, "sigs", 1)

    def test_set_ops_rejected_on_other_modes(self, deployment):
        counter = deployment.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        with pytest.raises(TypeError):
            deployment.manager("s0").register_set_add(counter, "k", 1)
        with pytest.raises(TypeError):
            deployment.manager("s0").register_set_remove(counter, "k", 1)
        with pytest.raises(TypeError):
            deployment.manager("s0").register_set_contains(counter, "k", 1)

    def test_handle_api(self, deployment):
        spec = declare_set(deployment)
        handle = deployment.handle("s0", spec)
        handle.add("sigs", 7)
        assert handle.contains("sigs", 7)
        assert handle.discard("sigs", 7) is True


class TestReplication:
    def test_add_propagates(self, deployment):
        spec = declare_set(deployment)
        deployment.manager("s0").register_set_add(spec, "sigs", 0xBAD)
        deployment.sim.run(until=0.001)
        for name in deployment.switch_names:
            assert deployment.manager(name).register_set_contains(spec, "sigs", 0xBAD)

    def test_remove_propagates(self, deployment):
        spec = declare_set(deployment)
        deployment.manager("s0").register_set_add(spec, "sigs", 1)
        deployment.sim.run(until=0.001)
        deployment.manager("s1").register_set_remove(spec, "sigs", 1)
        deployment.sim.run(until=0.002)
        for name in deployment.switch_names:
            assert not deployment.manager(name).register_set_contains(spec, "sigs", 1)

    def test_concurrent_add_wins_over_remove(self, make_deployment):
        """The OR-Set guarantee, across the wire: a remove only kills the
        tags it observed, so a concurrent re-add survives."""
        dep, _, _ = make_deployment(2, sync_period=1e-3)
        spec = declare_set(dep)
        dep.manager("s0").register_set_add(spec, "sigs", "x")
        dep.sim.run(until=0.001)
        # concurrent: s1 removes while s0 re-adds (neither sees the other)
        dep.manager("s1").register_set_remove(spec, "sigs", "x")
        dep.manager("s0").register_set_add(spec, "sigs", "x")
        dep.sim.run(until=0.01)
        for name in dep.switch_names:
            assert dep.manager(name).register_set_contains(spec, "sigs", "x")

    def test_converges_under_loss_via_sync(self, make_deployment):
        dep, _, _ = make_deployment(3, loss_rate=0.4, sync_period=1e-3)
        spec = declare_set(dep)
        for i in range(12):
            dep.manager(f"s{i % 3}").register_set_add(spec, "sigs", f"sig{i}")
        dep.sim.run(until=0.5)
        states = dep.ewo_states(spec)
        expected = frozenset(f"sig{i}" for i in range(12))
        assert all(state.get("sigs") == expected for state in states)

    def test_recovered_switch_refills(self, make_deployment):
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = declare_set(dep)
        dep.manager("s0").register_set_add(spec, "sigs", "keep")
        dep.sim.run(until=0.005)
        dep.controller.note_failure_time("s1")
        dep.fail_switch("s1")
        dep.sim.run(until=0.01)
        dep.controller.recover_switch("s1")
        dep.sim.run(until=0.05)
        assert dep.manager("s1").register_set_contains(spec, "sigs", "keep")


class TestFootprint:
    def test_footprint_grows_with_tags(self, deployment):
        spec = declare_set(deployment)
        m0 = deployment.manager("s0")
        engine = m0.ewo
        assert engine.orset_footprint(spec.group_id) == 0
        m0.register_set_add(spec, "sigs", 1)
        first = engine.orset_footprint(spec.group_id)
        assert first > 0
        m0.register_set_remove(spec, "sigs", 1)  # tombstone retained
        assert engine.orset_footprint(spec.group_id) > first

    def test_footprint_zero_for_other_modes(self, deployment):
        spec = deployment.declare(
            RegisterSpec("c2", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        assert deployment.manager("s0").ewo.orset_footprint(spec.group_id) == 0

    def test_wire_size_accounts_tags(self):
        from repro.protocols.messages import EwoEntry

        add = EwoEntry(key="k", version=("add", (0, 1)), value="x")
        remove = EwoEntry(key="k", version=("rm", ((0, 1), (0, 2), (1, 1))), value="x")
        assert remove.wire_bytes(8, 8) > add.wire_bytes(8, 8)
