#!/usr/bin/env python
"""Partial replication with the directory service (paper section 9).

The base SwiShmem design replicates every register on every switch —
fine for throughput scale-out, but not for state scale-out.  Section 9
sketches the fix: a controller-side directory tracking which switches
replicate which keys, with migration as access patterns shift.

This script builds an 6-switch deployment where most keys have strong
locality (used by two switches), lets the directory observe accesses
and place keys accordingly, migrates a key whose locality moved, and
prints the measured bandwidth/memory savings versus full replication.

Run:  python examples/partial_replication.py
"""

from repro import (
    Consistency,
    DirectoryService,
    EwoMode,
    PisaSwitch,
    RegisterSpec,
    SeededRng,
    Simulator,
    SwiShmemDeployment,
    Topology,
    build_full_mesh,
)

KEYS = 24
WRITES_PER_KEY = 5


def run(partial: bool):
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed=17))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 6)
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=2e-3)
    spec = deployment.declare(
        RegisterSpec(
            "flow_stats",
            Consistency.EWO,
            ewo_mode=EwoMode.COUNTER,
            capacity=KEYS * 2,
            partial_replication=partial,
        )
    )
    directory = DirectoryService(deployment.switch_names)
    if partial:
        deployment.attach_directory(directory)
        # learn placement from observed access locality: key i is used
        # by switches i and i+1 (mod 6)
        for i in range(KEYS):
            directory.observe_access(spec.group_id, f"k{i}", f"s{i % 6}")
            directory.observe_access(spec.group_id, f"k{i}", f"s{(i + 1) % 6}")
        directory.place_by_locality(spec.group_id, min_replicas=2)
    start = topo.total_bytes_sent()
    for i in range(KEYS):
        writer = deployment.manager(f"s{i % 6}")
        for j in range(WRITES_PER_KEY):
            sim.schedule(
                (i * WRITES_PER_KEY + j) * 10e-6,
                lambda w=writer, k=i: w.register_increment(spec, f"k{k}", 1),
            )
    sim.run(until=20e-3)
    replication_bytes = topo.total_bytes_sent() - start
    copies = sum(
        len(manager.ewo.groups[spec.group_id].vectors)
        for manager in deployment.managers.values()
    )
    return deployment, directory, spec, replication_bytes, copies


def main() -> None:
    _, _, _, full_bytes, full_copies = run(partial=False)
    deployment, directory, spec, part_bytes, part_copies = run(partial=True)

    print("full replication:    "
          f"{full_bytes:>7} replication bytes, {full_copies:>3} key copies")
    print("partial (directory): "
          f"{part_bytes:>7} replication bytes, {part_copies:>3} key copies")
    print(f"savings: {(1 - part_bytes / full_bytes) * 100:.0f}% bandwidth, "
          f"{(1 - part_copies / full_copies) * 100:.0f}% key copies\n")

    # correctness: each key's replicas agree on the exact count
    divergent = 0
    for i in range(KEYS):
        key = f"k{i}"
        for name in directory.replicas_of(spec.group_id, key):
            state = deployment.manager(name).ewo.local_state(spec.group_id)
            if state.get(key) != WRITES_PER_KEY:
                divergent += 1
    print(f"replica convergence check: {divergent} divergent replicas "
          f"across {KEYS} keys")

    # migration: k0's locality moved from (s0,s1) to (s3,s4)
    record = directory.migrate(spec.group_id, "k0", ["s3", "s4"])
    print(f"\nmigrated k0: {sorted(record.before)} -> {sorted(record.after)} "
          f"(generation {record.generation})")
    deployment.manager("s3").register_increment(spec, "k0", 1)
    deployment.sim.run(until=deployment.sim.now + 5e-3)
    value = deployment.manager("s4").ewo.local_state(spec.group_id).get("k0")
    print(f"s4 (new replica) sees k0 = {value} after one update+sync round")


if __name__ == "__main__":
    main()
