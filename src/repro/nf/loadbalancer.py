"""L4 load balancer (Table 1, row 4).

"L4 load balancers assign incoming connections to a particular
destination IP, then forward subsequent packets to the appropriate
destination IP.  Per-connection consistency (PCC) requires that once an
IP is assigned to a connection, it does not change, implying a need for
strong consistency of application state." (paper section 4.1)

Shared state:
  * ``lb_connections`` — **SRO**, ``control_plane_state=True``: the
    connection-to-DIP mapping (what SilkRoad keeps in its ConnTable).

The balancer fronts one virtual IP (``vip``).  A SYN to the VIP picks a
DIP — weighted by a per-switch round-robin over the pool, so different
switches naturally spread load — writes the mapping through the chain
(the SYN is buffered until the mapping is visible everywhere), rewrites
the destination, and forwards.  Every subsequent packet of the
connection, arriving at *any* switch, reads the mapping locally and
forwards to the same DIP — per-connection consistency even under
multipath routing or switch failure.

PCC violations (the same connection reaching two different DIPs) are
what experiment N1 measures, comparing SwiShmem against a
sharded/local-state baseline where each switch keeps a private table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, RegisterSpec
from repro.net.headers import TcpFlags
from repro.nf.base import NetworkFunction

__all__ = ["LoadBalancerNF"]


class LoadBalancerNF(NetworkFunction):
    """Distributed L4 load balancer with per-connection consistency."""

    NAME = "l4lb"

    def __init__(self, manager, handles, *, vip: str = "100.0.0.100",
                 dips: Sequence[str] = (), capacity: int = 8192,
                 pending_slots: Optional[int] = None,
                 shared_state: bool = True) -> None:
        super().__init__(manager, handles)
        if not dips:
            raise ValueError("load balancer needs at least one DIP")
        self.vip = vip
        self.dips = list(dips)
        self.shared_state = shared_state
        self.connections = handles.get("lb_connections")
        #: Baseline mode: per-switch private table (no replication).
        self._local_table: Dict[Any, str] = {}
        # Stagger round-robin start per switch so switches do not all
        # pick dips[0] first.
        self._rr = manager.deployment.node_id(manager.switch.name) % len(self.dips)
        self.new_connections = 0

    @classmethod
    def build_specs(cls, *, vip: str = "100.0.0.100", dips: Sequence[str] = (),
                    capacity: int = 8192, pending_slots: Optional[int] = None,
                    shared_state: bool = True) -> List[RegisterSpec]:
        if not shared_state:
            return []  # sharded baseline: no shared registers at all
        return [
            RegisterSpec(
                name="lb_connections",
                consistency=Consistency.SRO,
                capacity=capacity,
                key_bytes=13,
                value_bytes=4,
                pending_slots=pending_slots,
                control_plane_state=True,
            )
        ]

    # ------------------------------------------------------------------
    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        if packet.ipv4 is None or packet.tcp is None or packet.ipv4.dst != self.vip:
            return self.forward()
        flow = packet.five_tuple()
        key = flow.as_tuple()
        dip = self._lookup(key)
        if dip is not None:
            self.stats.state_hits += 1
            packet.ipv4.dst = dip
            return self.forward()
        self.stats.state_misses += 1
        is_syn = bool(packet.tcp.flags & TcpFlags.SYN) and not (
            packet.tcp.flags & TcpFlags.ACK
        )
        if not is_syn:
            # Mid-connection packet with no mapping: the connection was
            # assigned by a switch whose state we cannot see (baseline
            # mode) or the mapping is still replicating.  A real LB
            # would reset; we drop and count it.
            return self.drop()
        dip = self._pick_dip()
        self.new_connections += 1
        self._install(key, dip)
        packet.ipv4.dst = dip
        return self.forward()

    # ------------------------------------------------------------------
    def _lookup(self, key: Any) -> Optional[str]:
        if self.shared_state:
            return self.connections.read(key)
        return self._local_table.get(key)

    def _install(self, key: Any, dip: str) -> None:
        if self.shared_state:
            self.connections.write(key, dip)
        else:
            self._local_table[key] = dip

    def _pick_dip(self) -> str:
        dip = self.dips[self._rr % len(self.dips)]
        self._rr += 1
        return dip
