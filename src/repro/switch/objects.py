"""P4 stateful objects: register arrays, match tables, meters, counters.

These are the "high-level objects that consume switch memory" of paper
section 2, with the access-plane rules the paper calls out:

* **Registers, meters, counters** can be read *and written* from the
  data plane.
* **Tables** can be matched from the data plane but only *written from
  the control plane* — the property Observation 1 (section 4.1) leans
  on: read-intensive NFs already pay a control-plane round trip per
  update, so SRO's control-plane write path adds little.

Every object charges its footprint to the switch's
:class:`~repro.switch.memory.MemoryBudget` on construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from repro.switch.memory import MemoryBudget

__all__ = ["RegisterArray", "MatchTable", "Meter", "MeterColor", "Counter"]

V = TypeVar("V")


class RegisterArray(Generic[V]):
    """A fixed-size array of registers, indexed by integer.

    ``width_bytes`` is the per-entry wire width used for memory
    accounting and for sizing replication messages.  Values themselves
    are arbitrary Python objects (ints for counters, tuples for
    versioned cells); the width is the *declared* P4 width.
    """

    def __init__(
        self,
        name: str,
        size: int,
        width_bytes: int,
        budget: MemoryBudget,
        initial: V = 0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        if width_bytes <= 0:
            raise ValueError(f"register width must be positive, got {width_bytes}")
        self.name = name
        self.size = size
        self.width_bytes = width_bytes
        budget.allocate(f"register:{name}", size * width_bytes)
        self._cells: List[V] = [initial] * size
        self.read_count = 0
        self.write_count = 0

    def read(self, index: int) -> V:
        self._check(index)
        self.read_count += 1
        return self._cells[index]

    def write(self, index: int, value: V) -> None:
        self._check(index)
        self.write_count += 1
        self._cells[index] = value

    def update(self, index: int, fn: Callable[[V], V]) -> V:
        """Read-modify-write in one atomic pipeline pass (paper section 2)."""
        self._check(index)
        self.read_count += 1
        self.write_count += 1
        new_value = fn(self._cells[index])
        self._cells[index] = new_value
        return new_value

    def snapshot(self) -> List[V]:
        """A copy of all cells (control-plane snapshot for recovery)."""
        return list(self._cells)

    def fill(self, value: V) -> None:
        self._cells = [value] * self.size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register {self.name}[{index}] out of range [0,{self.size})")

    def __len__(self) -> int:
        return self.size


class MatchTable:
    """An exact-match table: data-plane match, control-plane write.

    ``miss`` is returned on lookup misses.  The table enforces a maximum
    entry count (sized at allocation) — insertion beyond capacity raises,
    mirroring hardware table exhaustion.
    """

    def __init__(
        self,
        name: str,
        max_entries: int,
        key_bytes: int,
        value_bytes: int,
        budget: MemoryBudget,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("table capacity must be positive")
        self.name = name
        self.max_entries = max_entries
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        budget.allocate(f"table:{name}", max_entries * (key_bytes + value_bytes))
        self._entries: Dict[Hashable, Any] = {}
        self.lookup_count = 0
        self.hit_count = 0
        self.insert_count = 0

    def lookup(self, key: Hashable, miss: Any = None) -> Any:
        """Data-plane match."""
        self.lookup_count += 1
        if key in self._entries:
            self.hit_count += 1
            return self._entries[key]
        return miss

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def insert(self, key: Hashable, value: Any) -> None:
        """Control-plane write.  Raises when the table is full."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise OverflowError(f"table {self.name} is full ({self.max_entries} entries)")
        self.insert_count += 1
        self._entries[key] = value

    def remove(self, key: Hashable) -> bool:
        """Control-plane delete; returns whether the key existed."""
        return self._entries.pop(key, _MISSING) is not _MISSING

    def entries(self) -> Iterator[Tuple[Hashable, Any]]:
        return iter(sorted(self._entries.items(), key=lambda kv: repr(kv[0])))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.max_entries


_MISSING = object()


class MeterColor:
    """Two-color meter result."""

    GREEN = "green"
    RED = "red"


class Meter:
    """A per-index token-bucket rate meter (the rate-limiter substrate).

    Each index has its own bucket with rate ``rate_bps`` and burst
    ``burst_bytes``.  ``execute`` consumes tokens for a packet and
    returns GREEN (conforming) or RED (exceeding), the standard P4
    two-color meter behavior.
    """

    def __init__(
        self,
        name: str,
        size: int,
        budget: MemoryBudget,
        rate_bps: float = 1e9,
        burst_bytes: int = 64 * 1024,
    ) -> None:
        if size <= 0:
            raise ValueError("meter size must be positive")
        if rate_bps <= 0:
            raise ValueError("meter rate must be positive")
        self.name = name
        self.size = size
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        # 16 bytes/entry: tokens (8) + last-update timestamp (8)
        budget.allocate(f"meter:{name}", size * 16)
        self._tokens: List[float] = [float(burst_bytes)] * size
        self._last: List[float] = [0.0] * size

    def execute(self, index: int, nbytes: int, now: float) -> str:
        if not 0 <= index < self.size:
            raise IndexError(f"meter {self.name}[{index}] out of range")
        elapsed = max(0.0, now - self._last[index])
        self._last[index] = now
        refill = elapsed * self.rate_bps / 8.0
        self._tokens[index] = min(float(self.burst_bytes), self._tokens[index] + refill)
        if self._tokens[index] >= nbytes:
            self._tokens[index] -= nbytes
            return MeterColor.GREEN
        return MeterColor.RED

    def tokens(self, index: int) -> float:
        return self._tokens[index]


class Counter:
    """A packet-and-byte counter array (data-plane writable)."""

    def __init__(self, name: str, size: int, budget: MemoryBudget) -> None:
        if size <= 0:
            raise ValueError("counter size must be positive")
        self.name = name
        self.size = size
        # 16 bytes/entry: packets (8) + bytes (8)
        budget.allocate(f"counter:{name}", size * 16)
        self._packets: List[int] = [0] * size
        self._bytes: List[int] = [0] * size

    def count(self, index: int, nbytes: int = 0) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"counter {self.name}[{index}] out of range")
        self._packets[index] += 1
        self._bytes[index] += nbytes

    def packets(self, index: int) -> int:
        return self._packets[index]

    def bytes(self, index: int) -> int:
        return self._bytes[index]

    def reset(self, index: Optional[int] = None) -> None:
        """Control-plane reset of one index or the whole array."""
        if index is None:
            self._packets = [0] * self.size
            self._bytes = [0] * self.size
        else:
            self._packets[index] = 0
            self._bytes[index] = 0
