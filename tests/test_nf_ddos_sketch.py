"""Tests for the DDoS detector's count-min-sketch mode (section 7 layout)."""

from __future__ import annotations

import pytest

from repro.nf.ddos import SKETCH_DEPTH, SKETCH_WIDTH, DdosDetectorNF
from repro.workload.attack import AttackScenario

from tests.nfworld import build_nf_world


def sketch_world(**kwargs):
    world = build_nf_world(responder_servers=False, **kwargs)
    detectors = world.deployment.install_nf(
        DdosDetectorNF,
        window=3e-3,
        entropy_threshold=-0.2,
        min_packets=40,
        use_sketch=True,
    )
    return world, detectors


class TestSketchMode:
    def test_state_size_fixed_regardless_of_ip_count(self):
        world, detectors = sketch_world()
        spec = world.deployment.spec_by_name("ddos_src")
        # the register group is sized by sketch geometry, not by traffic
        assert spec.capacity == SKETCH_DEPTH * SKETCH_WIDTH
        from repro.net.packet import make_udp_packet

        client, server = world.clients[0], world.servers[0]
        for i in range(300):  # 300 distinct source IPs
            world.sim.schedule(
                i * 10e-6,
                lambda i=i: client.inject(
                    make_udp_packet(f"203.0.{i // 250}.{i % 250}", server.ip, 1, 2)
                ),
            )
        world.sim.run(until=0.02)
        cells = world.deployment.manager("ingress").ewo.local_state(spec.group_id)
        assert len(cells) <= SKETCH_DEPTH * SKETCH_WIDTH

    def test_cells_replicate_and_merge(self):
        world, detectors = sketch_world()
        from repro.net.packet import make_udp_packet

        client, server = world.clients[0], world.servers[0]
        for i in range(20):
            world.sim.schedule(
                i * 20e-6,
                lambda: client.inject(make_udp_packet(client.ip, server.ip, 1, 2)),
            )
        world.sim.run(until=0.02)
        spec = world.deployment.spec_by_name("ddos_dst")
        states = [
            world.deployment.manager(name).ewo.local_state(spec.group_id)
            for name in world.deployment.switch_names
        ]
        assert all(state == states[0] for state in states)
        # each packet crossed three observation points (ingress, one NF
        # switch, egress), so the merged estimate is 3x the packet count
        # — a uniform scaling that leaves the entropy analysis untouched
        detector = detectors[0]
        assert detector._sketch_estimate(states[0], server.ip) == 60

    def test_attack_detected_via_sketch(self):
        world, detectors = sketch_world(clients=6, servers=6)
        scenario = AttackScenario(
            sim=world.sim,
            clients=world.clients,
            server_ips=world.server_ips(),
            rng=world.rng,
            background_pps=20000,
            attack_pps=150000,
            attack_start=8e-3,
            attack_duration=12e-3,
            bot_count=150,
        )
        scenario.start(duration=25e-3)
        world.sim.run(until=30e-3)
        assert any(d.alarms for d in detectors)
        alarmers = [d for d in detectors if d.alarms]
        assert any(d.suspected_victim == scenario.victim_ip for d in alarmers)

    def test_no_false_alarm_on_benign_traffic(self):
        world, detectors = sketch_world(clients=6, servers=6)
        scenario = AttackScenario(
            sim=world.sim,
            clients=world.clients,
            server_ips=world.server_ips(),
            rng=world.rng,
            background_pps=25000,
            attack_pps=0.1,
            attack_start=1.0,
            attack_duration=1e-4,
        )
        scenario.start(duration=20e-3)
        world.sim.run(until=25e-3)
        assert all(not d.alarms for d in detectors)
