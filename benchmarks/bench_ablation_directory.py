"""[A3] Section 9 extension: directory-driven partial replication.

"If there is locality, i.e., some state is normally used only by a
subset of switches, it would not need to be replicated to all switches.
One way to manage this … is to use a central controller that acts as a
directory service … tracking which switches replicate which state."

The experiment gives a fraction of the keyspace 2-switch locality and
measures, against full replication: replication bytes on the wire and
per-key replica-copies (the memory proxy), as the deployment scales
from 4 to 8 switches.  The win should grow with deployment size —
full-replication fanout is N-1, locality fanout stays 1.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.directory import DirectoryService
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_pct, print_header, print_table

KEYS = 32
WRITES_PER_KEY = 6
LOCAL_FRACTION = 0.75  # share of keys with 2-switch locality


@dataclass
class DirectoryResult:
    switches: int
    mode: str
    replication_bytes: int
    replica_copies: int
    converged: bool


def run_point(n_switches: int, partial: bool, seed: int = 91) -> DirectoryResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), n_switches)
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=2e-3)
    spec = deployment.declare(
        RegisterSpec(
            "state",
            Consistency.EWO,
            ewo_mode=EwoMode.COUNTER,
            capacity=KEYS * 2,
            partial_replication=partial,
        )
    )
    directory = DirectoryService(deployment.switch_names)
    local_keys = int(KEYS * LOCAL_FRACTION)
    if partial:
        deployment.attach_directory(directory)
        for i in range(local_keys):
            home = deployment.switch_names[i % n_switches]
            backup = deployment.switch_names[(i + 1) % n_switches]
            directory.place(spec.group_id, f"k{i}", [home, backup])
    start_bytes = topo.total_bytes_sent()
    for i in range(KEYS):
        writer_name = deployment.switch_names[i % n_switches]
        for j in range(WRITES_PER_KEY):
            sim.schedule(
                (i * WRITES_PER_KEY + j) * 10e-6,
                lambda w=writer_name, k=i: deployment.manager(w).register_increment(
                    spec, f"k{k}", 1
                ),
            )
    sim.run(until=KEYS * WRITES_PER_KEY * 10e-6 + 10e-3)
    replication_bytes = topo.total_bytes_sent() - start_bytes
    # replica copies actually materialized (memory proxy)
    copies = sum(
        len(manager.ewo.groups[spec.group_id].vectors)
        for manager in deployment.managers.values()
    )
    # convergence check on each key's replica set
    converged = True
    for i in range(KEYS):
        key = f"k{i}"
        replicas = (
            directory.replicas_of(spec.group_id, key)
            if partial
            else set(deployment.switch_names)
        )
        for name in replicas:
            state = deployment.manager(name).ewo.local_state(spec.group_id)
            if state.get(key) != WRITES_PER_KEY:
                converged = False
    return DirectoryResult(
        switches=n_switches,
        mode="partial (directory)" if partial else "full replication",
        replication_bytes=replication_bytes,
        replica_copies=copies,
        converged=converged,
    )


def run_experiment() -> List[DirectoryResult]:
    results = []
    for n in (4, 8):
        results.append(run_point(n, partial=False))
        results.append(run_point(n, partial=True))
    return results


def report(results: List[DirectoryResult]) -> None:
    print_header(
        "A3",
        "Section 9: directory-based partial replication savings",
        "state with locality need not be replicated everywhere; a "
        "directory service tracks which switches replicate which keys",
    )
    print_table(
        ["switches", "mode", "replication bytes", "key copies materialized", "converged"],
        [
            (r.switches, r.mode, r.replication_bytes, r.replica_copies, r.converged)
            for r in results
        ],
    )
    for n in (4, 8):
        full = next(r for r in results if r.switches == n and "full" in r.mode)
        part = next(r for r in results if r.switches == n and "partial" in r.mode)
        saved = 1 - part.replication_bytes / full.replication_bytes
        print(f"  {n} switches: partial replication saves "
              f"{fmt_pct(saved)} of replication bandwidth")


@pytest.mark.benchmark(group="experiment")
def test_directory_savings_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    assert all(r.converged for r in results)
    for n in (4, 8):
        full = next(r for r in results if r.switches == n and "full" in r.mode)
        part = next(r for r in results if r.switches == n and "partial" in r.mode)
        assert part.replication_bytes < full.replication_bytes
        assert part.replica_copies < full.replica_copies
    # the savings grow with deployment size
    def saving(n):
        full = next(r for r in results if r.switches == n and "full" in r.mode)
        part = next(r for r in results if r.switches == n and "partial" in r.mode)
        return 1 - part.replication_bytes / full.replication_bytes

    assert saving(8) > saving(4)


@pytest.mark.benchmark(group="ablation")
def test_benchmark_directory(benchmark):
    benchmark.pedantic(lambda: run_point(4, True), rounds=1, iterations=1)
