"""Pending-bit and sequence-number state for the SRO chain protocol.

Paper section 7: "Each switch has a register array with a sequence
number and an in-progress bit per entry.  Since this is relatively
small, current programmable switches could support over a million
entries; however, since these state elements only protect other state
updates, multiple keys can share the same sequence number and
in-progress bit, reducing state requirements further."

:class:`PendingTable` implements exactly that structure: ``slots``
entries, each holding

* ``next_seq`` — the head's per-slot write sequencer,
* ``applied_seq`` — the highest in-order sequence applied locally,
* a pending bit plus the sequence number that set it (so an ack for an
  older write cannot clear the bit set by a newer one).

Keys map to slots by a stable hash, so all chain members agree on the
mapping.  Sharing (``slots`` < number of live keys) trades memory for
**false sharing**: a read of key A is forwarded to the tail because key
B, hashing to the same slot, has a write in flight.  Experiment A1
quantifies that trade.
"""

from __future__ import annotations

import hashlib
from typing import Any, List

from repro.switch.memory import MemoryBudget

__all__ = ["PendingTable", "stable_slot_hash"]

#: Per-slot footprint: applied seq (4) + next seq (4) + pending seq (4)
#: + pending bit (1, byte-aligned).
_SLOT_BYTES = 13


def stable_slot_hash(key: Any, slots: int) -> int:
    """Deterministic key -> slot mapping, identical on every switch."""
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % slots


class PendingTable:
    """Per-register-group chain-protocol state on one switch."""

    def __init__(self, name: str, slots: int, budget: MemoryBudget) -> None:
        if slots <= 0:
            raise ValueError("pending table needs at least one slot")
        self.name = name
        self.slots = slots
        budget.allocate(f"pending:{name}", slots * _SLOT_BYTES)
        self._next_seq: List[int] = [0] * slots
        self._applied_seq: List[int] = [0] * slots
        self._pending: List[bool] = [False] * slots
        self._pending_seq: List[int] = [0] * slots

    # ------------------------------------------------------------------
    def slot_of(self, key: Any) -> int:
        return stable_slot_hash(key, self.slots)

    # --- head-only sequencing -----------------------------------------
    def assign_seq(self, slot: int) -> int:
        """Head assigns the next per-slot sequence number."""
        self._next_seq[slot] += 1
        return self._next_seq[slot]

    def advance_next_seq(self, slot: int, seq: int) -> None:
        """A non-head that becomes head must sequence past what it saw."""
        if seq > self._next_seq[slot]:
            self._next_seq[slot] = seq

    # --- in-order application -----------------------------------------
    def applied_seq(self, slot: int) -> int:
        return self._applied_seq[slot]

    def is_next_in_order(self, slot: int, seq: int) -> bool:
        return seq == self._applied_seq[slot] + 1

    def mark_applied(self, slot: int, seq: int) -> None:
        if seq != self._applied_seq[slot] + 1:
            raise ValueError(
                f"{self.name}: applying seq {seq} out of order "
                f"(applied={self._applied_seq[slot]})"
            )
        self._applied_seq[slot] = seq
        self.advance_next_seq(slot, seq)

    def force_applied(self, slot: int, seq: int) -> None:
        """Snapshot recovery: jump the applied counter forward."""
        if seq > self._applied_seq[slot]:
            self._applied_seq[slot] = seq
            self.advance_next_seq(slot, seq)

    # --- pending bits ----------------------------------------------------
    def set_pending(self, slot: int, seq: int) -> None:
        self._pending[slot] = True
        if seq > self._pending_seq[slot]:
            self._pending_seq[slot] = seq

    def clear_pending(self, slot: int, seq: int) -> bool:
        """Clear the bit only if no newer write re-armed it.

        Returns True when the bit was actually cleared.
        """
        if self._pending[slot] and seq >= self._pending_seq[slot]:
            self._pending[slot] = False
            return True
        return False

    def is_pending(self, slot: int) -> bool:
        return self._pending[slot]

    def pending_count(self) -> int:
        return sum(self._pending)

    def clear_all(self) -> int:
        """Drop every pending bit; returns how many were set.

        Used when a group stops tracking pending bits (an SRO -> ERO
        re-level): reads no longer forward on in-flight writes, so a
        stale bit would only leak into ``pending_count`` reporting.
        """
        cleared = sum(self._pending)
        for slot in range(self.slots):
            self._pending[slot] = False
        return cleared

    # ------------------------------------------------------------------
    @property
    def state_bytes(self) -> int:
        return self.slots * _SLOT_BYTES
