"""The central controller: failure detection, chain repair, recovery.

Paper section 6.3 assumes "a central controller can detect which
switches have failed" and sketches the two phases we implement:

**Failover** (automatic, driven by the detector):

* SRO — "we regain connectivity by reprogramming the routing of the
  failed switch neighbors" and repair the chain by excising the failed
  member.  In-flight writes time out at their writers' control planes
  and are retried against the repaired chain.
* EWO — "other than removing the failed switch from the multicast
  group, no explicit failover protocol is needed."

**Recovery** (operator-initiated via :meth:`recover_switch`):

* The switch restarts with volatile data-plane memory wiped.
* EWO — re-join the multicast groups and wait for periodic sync; CRDT
  state (including the rejoining switch's own counter slots) flows back
  from the other replicas.
* SRO — append to the chain in *catch-up* mode (gap-tolerant apply),
  wait a drain delay so in-flight old-chain writes settle, transfer a
  snapshot from the current read tail, and finally promote the new
  member to read tail.

Failure detection is modeled as periodic liveness polling with period
``detect_period``: detection latency is bounded by one period, matching
a heartbeat-timeout detector without simulating heartbeat packets.
Configuration pushes to switch control planes pay ``config_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.sim.engine import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment

__all__ = ["CentralController", "FailureEvent", "RecoveryEvent"]

DEFAULT_DETECT_PERIOD = 500e-6
#: Latency for the controller to push one config update to one switch.
DEFAULT_CONFIG_LATENCY = 100e-6
#: Wait for in-flight old-chain writes to settle before snapshotting.
DEFAULT_DRAIN_DELAY = 5e-3


@dataclass
class FailureEvent:
    """Bookkeeping for one detected switch failure."""

    switch: str
    failed_at: float
    detected_at: float
    chains_repaired: List[int] = field(default_factory=list)
    multicast_groups_updated: int = 0

    @property
    def detection_latency(self) -> float:
        return self.detected_at - self.failed_at


@dataclass
class RecoveryEvent:
    """Bookkeeping for one switch recovery."""

    switch: str
    started_at: float
    ewo_rejoined_at: Optional[float] = None
    promoted_at: Dict[int, float] = field(default_factory=dict)

    def sro_recovery_time(self, group_id: int) -> Optional[float]:
        promoted = self.promoted_at.get(group_id)
        if promoted is None:
            return None
        return promoted - self.started_at


class CentralController:
    """Deployment-wide failure detector and reconfiguration engine."""

    def __init__(
        self,
        deployment: "SwiShmemDeployment",
        detect_period: float = DEFAULT_DETECT_PERIOD,
        config_latency: float = DEFAULT_CONFIG_LATENCY,
        drain_delay: float = DEFAULT_DRAIN_DELAY,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.detect_period = detect_period
        self.config_latency = config_latency
        self.drain_delay = drain_delay
        self._known_failed: Set[str] = set()
        self._fail_times: Dict[str, float] = {}
        self._known_down_links: Set[frozenset] = set()
        self.link_events = 0
        self.failures: List[FailureEvent] = []
        self.recoveries: List[RecoveryEvent] = []
        self._detector = Process(
            self.sim, detect_period, self._poll, name="controller:detect"
        ).start()

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def note_failure_time(self, switch_name: str) -> None:
        """Experiments call this when injecting a fault, so detection
        latency can be measured.  Optional."""
        self._fail_times.setdefault(switch_name, self.sim.now)

    def _poll(self) -> None:
        for switch in self.deployment.switches:
            if switch.failed and switch.name not in self._known_failed:
                self._on_failure_detected(switch.name)
            elif not switch.failed and switch.name in self._known_failed:
                # recovered out-of-band; forget so a second failure is seen
                pass
        self._poll_links()

    def _poll_links(self) -> None:
        """Link failures only require re-routing (paper 6.3: 'links …
        may fail'; the replication protocols themselves retry/resync
        over whatever paths remain)."""
        down_now = {
            frozenset((link.a.name, link.b.name))
            for link in self.deployment.topo.links
            if not link.up
        }
        if down_now != self._known_down_links:
            self._known_down_links = down_now
            self.link_events += 1
            self.deployment.routing.recompute()

    def _on_failure_detected(self, name: str) -> None:
        self._known_failed.add(name)
        event = FailureEvent(
            switch=name,
            failed_at=self._fail_times.get(name, self.sim.now),
            detected_at=self.sim.now,
        )
        self.failures.append(event)
        # "First, we regain connectivity by reprogramming the routing of
        # the failed switch neighbors."
        self.deployment.routing.recompute()
        # SRO: excise the member from every chain it belongs to.
        for group_id, chain in list(self.deployment.chains.items()):
            if name in chain:
                repaired = chain.without(name)
                self._push_chain(repaired)
                event.chains_repaired.append(group_id)
        # EWO: drop from every multicast group; nothing else needed.
        event.multicast_groups_updated = (
            self.deployment.multicast.remove_member_everywhere(name)
        )

    def _push_chain(self, chain) -> None:
        """Distribute a descriptor to all live switches' control planes."""
        self.deployment.chains[chain.chain_id] = chain
        for manager in self.deployment.managers.values():
            if manager.switch.failed:
                continue
            if chain.chain_id not in manager.sro.groups:
                continue
            self.sim.schedule(
                self.config_latency,
                manager.sro.set_chain,
                chain.chain_id,
                chain,
                label="controller:push-chain",
            )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_switch(self, name: str, wipe_state: bool = True) -> RecoveryEvent:
        """Bring a failed switch back into the deployment.

        ``wipe_state=True`` models a restarted switch whose volatile
        data-plane registers are empty (the realistic case).
        """
        manager = self.deployment.manager(name)
        switch = manager.switch
        if not switch.failed:
            raise ValueError(f"{name} has not failed; nothing to recover")
        event = RecoveryEvent(switch=name, started_at=self.sim.now)
        self.recoveries.append(event)
        switch.recover()
        self._known_failed.discard(name)
        self._fail_times.pop(name, None)
        self.deployment.routing.recompute()
        if wipe_state:
            self._wipe_state(manager)
        # EWO: rejoin multicast groups and restart the sync generators.
        rejoined = False
        for group_id, state in manager.ewo.groups.items():
            self.deployment.multicast.get(group_id).add(name)
            manager.restart_ewo_sync(group_id)
            rejoined = True
        if rejoined:
            event.ewo_rejoined_at = self.sim.now
        # SRO: append to each chain in catch-up mode, then snapshot.
        for group_id in list(manager.sro.groups):
            chain = self.deployment.chains.get(group_id)
            if chain is None:
                continue
            if name in chain:
                # We were never excised (failure undetected) — nothing to do.
                continue
            appended = chain.with_appended(name)
            manager.sro.set_catching_up(group_id, True)
            self._push_chain(appended)
            # Let in-flight old-chain writes settle before snapshotting,
            # so the snapshot provably covers every committed write that
            # did not flow through the new member.
            self.sim.schedule(
                self.drain_delay,
                self._start_snapshot,
                group_id,
                name,
                event,
                label="controller:snapshot-start",
            )
        return event

    def _wipe_state(self, manager) -> None:
        for state in manager.sro.groups.values():
            state.store.clear()
            slots = state.pending.slots
            state.pending._next_seq = [0] * slots
            state.pending._applied_seq = [0] * slots
            state.pending._pending = [False] * slots
            state.pending._pending_seq = [0] * slots
            state.dedup.clear()
        for state in manager.ewo.groups.values():
            state.vectors.clear()
            if state.cells is not None:
                state.cells.clear()
            if state.sets is not None:
                state.sets.clear()
            state._pending_entries.clear()

    def _start_snapshot(self, group_id: int, target: str, event: RecoveryEvent) -> None:
        chain = self.deployment.chains[group_id]
        source = chain.read_tail
        if source == target:
            # Degenerate single-member chain: nothing to copy.
            self._promote(group_id, target, event)
            return
        self.deployment.failover.start_transfer(
            group_id,
            source=source,
            target=target,
            on_complete=lambda: self._promote(group_id, target, event),
        )

    def _promote(self, group_id: int, target: str, event: RecoveryEvent) -> None:
        """Catch-up finished: the new member replaces the read tail."""
        chain = self.deployment.chains[group_id]
        if target in chain and chain.read_tail != target:
            self._push_chain(chain.promoted())
        manager = self.deployment.manager(target)
        if not manager.switch.failed:
            self.sim.schedule(
                self.config_latency,
                manager.sro.set_catching_up,
                group_id,
                False,
                label="controller:end-catchup",
            )
        event.promoted_at[group_id] = self.sim.now

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._detector.stop()

    def last_failure(self) -> Optional[FailureEvent]:
        return self.failures[-1] if self.failures else None
