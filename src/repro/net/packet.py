"""The packet model.

A :class:`Packet` is a parsed header stack plus a payload size and a
mutable metadata dict.  The metadata dict plays the role of PISA
per-packet metadata: the parser and pipeline stages communicate through
it, and it is discarded when the packet leaves the switch.

Packets are copied (never aliased) when they fan out — multicast,
mirroring, recirculation — because each copy is independently mutable
down its own path, exactly as hardware would re-serialize and re-parse.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.net.headers import (
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    PROTO_TCP,
    PROTO_UDP,
    SwiShmemHeader,
    TcpFlags,
    TcpHeader,
    UdpHeader,
)

__all__ = ["Packet", "make_tcp_packet", "make_udp_packet"]

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A packet in flight.

    Only the headers that are present are non-None; the deparser
    recomputes ``wire_size`` from whatever stack the pipeline left
    behind.
    """

    eth: Optional[EthernetHeader] = None
    ipv4: Optional[IPv4Header] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    swishmem: Optional[SwiShmemHeader] = None
    #: Protocol message object for SwiShmem packets (not bytes; sized via
    #: its own ``wire_size`` attribute).
    swishmem_payload: Any = None
    payload_size: int = 0
    #: Stand-in for payload content: a workload-chosen digest that NFs
    #: (e.g. the IPS) hash as if they had read the payload bytes.
    payload_digest: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Per-packet metadata, reset at each switch (PISA metadata).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Time the packet was first created (set by the injector).
    created_at: float = 0.0
    #: INT telemetry stack (``repro.obs.inttel.IntTelemetry``).  Unlike
    #: ``meta`` this survives hops — it is an on-wire header stack that
    #: INT-enabled switches append to and the sink strips.
    int_data: Any = None
    #: Causal trace context (``repro.obs.causal.TraceContext``).  Rides
    #: alongside ``int_data`` but — unlike it — contributes zero wire
    #: bytes: it is simulator bookkeeping, so stamping it can never
    #: change serialization delay, timing, or chaos-replay digests.
    trace: Any = None

    @property
    def wire_size(self) -> int:
        """Total on-wire bytes, used for serialization-delay accounting."""
        size = self.payload_size
        for header in (self.eth, self.ipv4, self.tcp, self.udp, self.swishmem):
            if header is not None:
                size += header.wire_size
        if self.swishmem_payload is not None:
            size += getattr(self.swishmem_payload, "wire_size", 0)
        if self.int_data is not None:
            size += self.int_data.wire_size
        return size

    def five_tuple(self) -> Optional[FiveTuple]:
        """Extract the connection five-tuple, or None for non-L4 packets."""
        if self.ipv4 is None:
            return None
        if self.tcp is not None:
            return FiveTuple(
                self.ipv4.src, self.ipv4.dst, self.tcp.src_port, self.tcp.dst_port, PROTO_TCP
            )
        if self.udp is not None:
            return FiveTuple(
                self.ipv4.src, self.ipv4.dst, self.udp.src_port, self.udp.dst_port, PROTO_UDP
            )
        return None

    def clone(self) -> "Packet":
        """Deep copy with a fresh uid (multicast/mirror/recirculation copies)."""
        duplicate = copy.deepcopy(self)
        duplicate.uid = next(_packet_ids)
        return duplicate

    def __str__(self) -> str:
        parts = [f"pkt#{self.uid}"]
        if self.swishmem is not None:
            parts.append(f"swishmem:{self.swishmem.op.value}")
        tup = self.five_tuple()
        if tup is not None:
            parts.append(str(tup))
        elif self.ipv4 is not None:
            parts.append(f"ip:{self.ipv4.src}->{self.ipv4.dst}")
        parts.append(f"{self.wire_size}B")
        return " ".join(parts)


def make_tcp_packet(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    flags: TcpFlags = TcpFlags.NONE,
    payload_size: int = 0,
    seq: int = 0,
) -> Packet:
    """Build a TCP packet with a full Ethernet/IPv4/TCP stack."""
    return Packet(
        eth=EthernetHeader(),
        ipv4=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP),
        tcp=TcpHeader(src_port=src_port, dst_port=dst_port, flags=flags, seq=seq),
        payload_size=payload_size,
    )


def make_udp_packet(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    payload_size: int = 0,
) -> Packet:
    """Build a UDP packet with a full Ethernet/IPv4/UDP stack."""
    return Packet(
        eth=EthernetHeader(),
        ipv4=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_UDP),
        udp=UdpHeader(src_port=src_port, dst_port=dst_port),
        payload_size=payload_size,
    )
