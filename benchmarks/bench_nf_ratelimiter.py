"""[N4] Distributed rate limiter: aggregate enforcement error.

Paper section 4.2: the rate limiter "can tolerate some transient
inconsistencies: it is acceptable for a few additional packets to go
through immediately after the user reaches the bandwidth limit."

One user's traffic enters the fabric through *three different leaf
switches* (the distributed-rate-limiting setting of Raghavan et al.,
which the paper cites as motivation for global state).  Measured: the
enforcement error — admitted bytes relative to the configured aggregate
budget — for

* **shared (EWO)** meters: every leaf sees the user's global usage;
* **local-only** meters: each leaf independently enforces the full
  limit against just its own third of the traffic, the classic failure
  that admits up to N times the budget.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_leaf_spine
from repro.nf.ratelimiter import RateLimiterNF
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_pct, print_header, print_table

LIMIT_BPS = 8e6
WINDOW = 2e-3
DURATION = 60e-3
CLIENT_LEAVES = 3


@dataclass
class LimiterResult:
    mode: str
    overload_factor: float
    budget_bytes: float
    admitted_bytes: int
    overshoot_fraction: float


def run_point(overload_factor: float, shared: bool, seed: int = 71) -> LimiterResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    book = AddressBook()
    hosts = []

    def host_factory(name):
        # clients under leaf0..2 share one user prefix; the server sits
        # under leaf3 with a distinct prefix
        if name.startswith(f"h{CLIENT_LEAVES}"):
            ip = "192.168.0.1"
        else:
            ip = f"10.0.0.{len(hosts) + 1}"
        host = EndHost(name, sim, ip, book)
        hosts.append(host)
        return host

    leaves, spines, host_list = build_leaf_spine(
        topo, lambda n: PisaSwitch(n, sim), host_factory,
        leaves=CLIENT_LEAVES + 1, spines=2, hosts_per_leaf=1,
    )
    deployment = SwiShmemDeployment(
        sim, topo, leaves + spines, address_book=book,
        sync_period=1e-3 if shared else 100.0,
    )
    deployment.install_nf(
        RateLimiterNF, limit_bps=LIMIT_BPS, window=WINDOW, replicate=shared
    )
    clients = [h for h in host_list if h.ip.startswith("10.")]
    server = next(h for h in host_list if h.ip.startswith("192.168"))
    payload = 1000
    packet_bytes = payload + 42
    total_pps = overload_factor * LIMIT_BPS / 8 / packet_bytes
    per_client_gap = len(clients) / total_pps
    for client_index, client in enumerate(clients):
        count = int(DURATION / per_client_gap)
        for i in range(count):
            sim.schedule(
                client_index * per_client_gap / len(clients) + i * per_client_gap,
                lambda c=client: c.inject(
                    make_udp_packet(c.ip, server.ip, 1234, 9999, payload_size=payload)
                ),
            )
    sim.run(until=DURATION + 20e-3)
    admitted = sum(r.packet.wire_size for r in server.received)
    budget = LIMIT_BPS * DURATION / 8
    return LimiterResult(
        mode="shared (EWO)" if shared else "local-only",
        overload_factor=overload_factor,
        budget_bytes=budget,
        admitted_bytes=admitted,
        overshoot_fraction=admitted / budget - 1.0,
    )


def run_experiment() -> List[LimiterResult]:
    results = []
    for factor in (0.5, 2.0, 6.0):
        results.append(run_point(factor, shared=True))
    results.append(run_point(6.0, shared=False))
    return results


def report(results: List[LimiterResult]) -> None:
    print_header(
        "N4",
        "Distributed rate limiting: aggregate enforcement across leaves",
        "shared meters enforce the aggregate limit with only transient "
        "overshoot; local-only meters admit up to Nx the budget",
    )
    print_table(
        ["meters", "offered / limit", "budget bytes", "admitted bytes", "vs budget"],
        [
            (
                r.mode,
                f"{r.overload_factor:.1f}x",
                f"{r.budget_bytes:.0f}",
                r.admitted_bytes,
                f"{(r.admitted_bytes / r.budget_bytes):.2f}x",
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_rate_limiter_shape_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    under, over2, over6, local6 = results
    # under the limit: everything admitted, no throttling
    assert under.admitted_bytes == pytest.approx(under.budget_bytes * 0.5, rel=0.15)
    # over the limit with shared meters: admitted stays near the budget
    # ("a few additional packets" of transient overshoot)
    for r in (over2, over6):
        assert r.overshoot_fraction < 0.6
        assert r.admitted_bytes > 0.5 * r.budget_bytes  # not over-throttled
    # local-only meters at 6x overload admit several times what shared
    # enforcement does (approaching one budget per entry leaf)
    assert local6.admitted_bytes > 1.8 * over6.admitted_bytes


@pytest.mark.benchmark(group="nf")
def test_benchmark_ratelimiter(benchmark):
    benchmark.pedantic(lambda: run_point(2.0, True), rounds=1, iterations=1)
