"""Logical and physical clocks for last-writer-wins ordering.

Paper section 6.2: "Unique version numbers can be obtained by using a
switch ID as a tie breaker in addition to a timestamp attached to each
write request.  The timestamp can be a Lamport clock or a realtime
clock, which can be synchronized among the switches down to tens of
nanoseconds."

Three clock types are provided:

* :class:`LamportClock` — the classic logical clock;
* :class:`SynchronizedClock` — a per-switch physical clock with a
  bounded, seeded offset from true simulation time, modeling DPTP-style
  data-plane time sync (tens of nanoseconds of skew);
* :class:`HybridClock` — physical time plus a logical component that
  guarantees strict monotonicity even under clock skew.

All produce :class:`Timestamp` values totally ordered by
``(time, logical, node_id)`` — the node id is the paper's switch-ID tie
breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Timestamp", "LamportClock", "SynchronizedClock", "HybridClock"]


@dataclass(frozen=True, order=True)
class Timestamp:
    """A totally ordered version stamp: (time, logical, node_id)."""

    time: float
    logical: int
    node_id: int

    #: bytes on the wire: 48-bit time + 16-bit logical + 16-bit node id
    wire_size = 10

    def __str__(self) -> str:
        return f"{self.time * 1e6:.3f}us/{self.logical}@{self.node_id}"


class LamportClock:
    """Classic Lamport logical clock, one per switch."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._counter = 0

    def now(self) -> Timestamp:
        """Tick and return a fresh local timestamp."""
        self._counter += 1
        return Timestamp(0.0, self._counter, self.node_id)

    def witness(self, remote: Timestamp) -> None:
        """Advance past a timestamp observed on a received message."""
        self._counter = max(self._counter, remote.logical)

    @property
    def counter(self) -> int:
        return self._counter


class SynchronizedClock:
    """A physical clock with bounded offset from true time.

    ``read_true_time`` is usually ``lambda: sim.now``; ``offset`` is the
    fixed per-switch skew (drawn once from the seeded RNG within the
    sync bound, e.g. +/- 50 ns for DPTP-class synchronization).
    """

    def __init__(
        self,
        node_id: int,
        read_true_time: Callable[[], float],
        offset: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self._read_true_time = read_true_time
        self.offset = offset

    def now(self) -> Timestamp:
        return Timestamp(self._read_true_time() + self.offset, 0, self.node_id)

    def witness(self, remote: Timestamp) -> None:
        """Physical clocks do not adjust on receive."""


class HybridClock:
    """Hybrid logical clock: physical time + logical fixups.

    Guarantees that successive local stamps are strictly increasing and
    that stamps causally after a received message compare greater than
    it, even when the physical clock lags.
    """

    def __init__(
        self,
        node_id: int,
        read_true_time: Callable[[], float],
        offset: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self._read_true_time = read_true_time
        self.offset = offset
        self._last_time = 0.0
        self._logical = 0

    def now(self) -> Timestamp:
        physical = self._read_true_time() + self.offset
        if physical > self._last_time:
            self._last_time = physical
            self._logical = 0
        else:
            self._logical += 1
        return Timestamp(self._last_time, self._logical, self.node_id)

    def witness(self, remote: Timestamp) -> None:
        if remote.time > self._last_time:
            self._last_time = remote.time
            self._logical = remote.logical
        elif remote.time == self._last_time:
            self._logical = max(self._logical, remote.logical)
