"""Property-based protocol tests: random op schedules through the full
simulator must preserve each protocol's core invariant.

These are the heaviest properties in the suite, so example counts are
kept modest; each example builds a fresh 3-switch deployment and runs a
randomized schedule to quiescence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linearizability import check_history
from repro.analysis.metrics import replica_divergence
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


def fresh_deployment(seed: int, loss_rate: float = 0.0, record_history: bool = False):
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3, loss_rate=loss_rate)
    return sim, SwiShmemDeployment(
        sim, topo, switches, sync_period=1e-3, record_history=record_history
    )


# one operation: (switch 0-2, key 0-3, op-specific payload)
counter_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3), st.integers(1, 5)),
    min_size=1,
    max_size=25,
)
lww_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3), st.integers(0, 99)),
    min_size=1,
    max_size=25,
)
set_ops = st.lists(
    st.tuples(st.integers(0, 2), st.booleans(), st.sampled_from("abcde")),
    min_size=1,
    max_size=25,
)


class TestEwoConvergenceProperties:
    @given(ops=counter_ops, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_counter_replicas_converge_to_exact_sum(self, ops, seed):
        sim, dep = fresh_deployment(seed)
        spec = dep.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=16)
        )
        totals = {}
        for i, (switch, key, amount) in enumerate(ops):
            sim.schedule(
                i * 17e-6,
                lambda s=switch, k=key, a=amount: dep.manager(f"s{s}").register_increment(
                    spec, f"k{k}", a
                ),
            )
            totals[f"k{key}"] = totals.get(f"k{key}", 0) + amount
        sim.run(until=len(ops) * 17e-6 + 10e-3)
        states = dep.ewo_states(spec)
        assert replica_divergence(states) == 0
        assert states[0] == totals

    @given(ops=counter_ops, seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_counter_converges_despite_heavy_loss(self, ops, seed):
        sim, dep = fresh_deployment(seed, loss_rate=0.35)
        spec = dep.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=16)
        )
        totals = {}
        for i, (switch, key, amount) in enumerate(ops):
            sim.schedule(
                i * 17e-6,
                lambda s=switch, k=key, a=amount: dep.manager(f"s{s}").register_increment(
                    spec, f"k{k}", a
                ),
            )
            totals[f"k{key}"] = totals.get(f"k{key}", 0) + amount
        sim.run(until=len(ops) * 17e-6 + 0.3)  # many sync rounds
        states = dep.ewo_states(spec)
        assert replica_divergence(states) == 0
        assert states[0] == totals

    @given(ops=lww_ops, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_lww_replicas_converge_to_single_winner(self, ops, seed):
        sim, dep = fresh_deployment(seed)
        spec = dep.declare(
            RegisterSpec("l", Consistency.EWO, ewo_mode=EwoMode.LWW, capacity=16)
        )
        written = {}
        for i, (switch, key, value) in enumerate(ops):
            sim.schedule(
                i * 17e-6,
                lambda s=switch, k=key, v=value: dep.manager(f"s{s}").register_write(
                    spec, f"k{k}", v
                ),
            )
            written.setdefault(f"k{key}", set()).add(value)
        sim.run(until=len(ops) * 17e-6 + 10e-3)
        states = dep.ewo_states(spec)
        assert replica_divergence(states) == 0
        for key, value in states[0].items():
            assert value in written[key]  # winner was actually written

    @given(ops=set_ops, seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_orset_replicas_converge(self, ops, seed):
        sim, dep = fresh_deployment(seed)
        spec = dep.declare(
            RegisterSpec("s", Consistency.EWO, ewo_mode=EwoMode.ORSET, capacity=16)
        )
        for i, (switch, is_add, element) in enumerate(ops):
            def op(s=switch, add=is_add, e=element):
                manager = dep.manager(f"s{s}")
                if add:
                    manager.register_set_add(spec, "set", e)
                else:
                    manager.register_set_remove(spec, "set", e)

            sim.schedule(i * 17e-6, op)
        sim.run(until=len(ops) * 17e-6 + 10e-3)
        # an empty set and an absent key are the same logical state (a
        # remove of a never-seen element materializes an empty ORSet)
        states = [
            {key: value for key, value in state.items() if value}
            for state in dep.ewo_states(spec)
        ]
        assert replica_divergence(states) == 0


class TestSroProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 99)),
            min_size=1,
            max_size=12,
        ),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_writes_agree_and_linearize(self, ops, seed):
        sim, dep = fresh_deployment(seed, record_history=True)
        spec = dep.declare(RegisterSpec("r", Consistency.SRO, capacity=16))
        for i, (switch, key, value) in enumerate(ops):
            sim.schedule(
                i * 37e-6,
                lambda s=switch, k=key, v=value: dep.manager(f"s{s}").register_write(
                    spec, f"k{k}", v
                ),
            )
        sim.run(until=len(ops) * 37e-6 + 50e-3)
        stores = dep.sro_stores(spec)
        assert all(store == stores[0] for store in stores)
        committed = sum(
            dep.manager(n).sro.stats_for(spec.group_id).writes_committed
            for n in dep.switch_names
        )
        assert committed == len(ops)
        report = check_history(dep.history)
        assert report.ok, report.violations

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_writes_commit_under_random_loss_seed(self, seed):
        sim, dep = fresh_deployment(seed, loss_rate=0.25)
        spec = dep.declare(RegisterSpec("r", Consistency.SRO, capacity=16))
        for i in range(8):
            sim.schedule(
                i * 100e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_write(spec, f"k{i}", i),
            )
        sim.run(until=2.0)
        stores = dep.sro_stores(spec)
        assert all(len(store) == 8 for store in stores)
        assert all(store == stores[0] for store in stores)
