"""[T2] Consistency advisor: re-derive Table 1 from live traffic alone.

Experiment T1 reproduces the paper's Table 1 with the *post-hoc* profiler
in ``repro.core.compiler``, which still needs the operator to hand it
each state's consistency requirement.  This experiment closes that loop:
the six NFs run under a Zipf-skewed workload with the streaming
:class:`~repro.obs.accessprof.AccessProfiler` attached to the protocol
hot paths, and :class:`~repro.obs.advisor.ConsistencyAdvisor` must
recover every Table 1 row — write frequency, read frequency, *and* the
register type each NF was built with — from observed traffic with zero
hand labels.

Also asserted:

* **advice, not just agreement** — a per-source meter deliberately
  *misdeclared* as SRO is flagged as a high-confidence mismatch with an
  SRO -> EWO demotion recommendation (the docs/OBSERVABILITY.md worked
  example);
* **observer neutrality** — a same-seed NF run and a same-seed chaos
  soak are byte-identical (event-history digests) with the profiler on
  and off: profiling never perturbs what it measures;
* **skew visibility** — the Zipf drive's heavy hitters surface in the
  deployment-wide hot-key ranking (the input state migration needs).

Run standalone::

    python benchmarks/bench_access_advisor.py [--quick]
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, RegisterSpec
from repro.nf.base import NetworkFunction
from repro.nf.ddos import DdosDetectorNF
from repro.nf.firewall import FirewallNF
from repro.nf.ips import IpsNF
from repro.nf.loadbalancer import LoadBalancerNF
from repro.nf.nat import NatNF
from repro.nf.ratelimiter import RateLimiterNF
from repro.obs import AccessProfiler, ConsistencyAdvisor, render_access_profile
from repro.workload.flows import FlowSpec, inject_flow
from repro.workload.zipf import ZipfSampler

from benchmarks.bench_chaos_soak import run_chaos_soak
from benchmarks.common import emit_json, print_header, print_table
from tests.nfworld import build_nf_world

VIP = "100.0.0.100"
NAT_IP = "100.0.0.1"

#: Paper Table 1, transcribed: state -> (write freq, read freq).  The
#: advisor must reproduce these labels AND the register type below from
#: traffic alone (T1's NEEDS_STRONG hand labels are deliberately absent).
PAPER_TABLE1 = {
    "nat_table": ("New connection", "Every packet"),
    "fw_conntrack": ("New connection", "Every packet"),
    "ips_signatures": ("Low", "Every packet"),
    "lb_connections": ("New connection", "Every packet"),
    "ddos_src": ("Every packet", "Every packet"),
    "ddos_dst": ("Every packet", "Every packet"),
    "rl_usage": ("Every packet", "Every window"),
}

#: Register type each NF was built with (section 5 mapping).
EXPECTED_CLASS = {
    "nat_table": "sro",
    "fw_conntrack": "sro",
    "ips_signatures": "ero",
    "lb_connections": "sro",
    "ddos_src": "ewo",
    "ddos_dst": "ewo",
    "rl_usage": "ewo",
}


# ----------------------------------------------------------------------
# Zipf-skewed drive
# ----------------------------------------------------------------------

def _drive_zipf_flows(world, flows=30, data_packets=6, dst_ips=None, gap=2e-3, s=1.2):
    """Drive TCP flows with Zipf-skewed clients and destinations.

    :class:`~repro.workload.flows.FlowGenerator` picks both uniformly;
    real traffic is heavy-hitter skewed, and the skew is what makes the
    profiler's hot-key ranking non-trivial.  The 2 ms default gap models
    a client that waits out the handshake RTT, as in T1.
    """
    rng = world.rng.stream("zipf-flows")
    destinations = list(dst_ips or world.server_ips())
    client_picker = ZipfSampler(len(world.clients), s=s, rng=rng)
    dst_picker = ZipfSampler(len(destinations), s=s, rng=rng)
    at = world.sim.now
    port = 31000
    for _ in range(flows):
        at += rng.expovariate(4000.0)
        port += 1
        inject_flow(
            world.sim,
            FlowSpec(
                client=client_picker.pick(world.clients),
                dst_ip=dst_picker.pick(destinations),
                src_port=port,
                data_packets=data_packets,
                inter_packet_gap=gap,
                start_at=at,
            ),
        )
    world.sim.run(until=0.2)


class MeterSroNF(NetworkFunction):
    """A per-source packet meter deliberately *misdeclared* as SRO.

    Every packet updates its source's counter through the replication
    chain — exactly the pattern Observation 2 says cannot afford SRO.
    The advisor must flag the declaration and recommend EWO.
    """

    NAME = "meter-sro"

    @classmethod
    def build_specs(cls, **kwargs: Any) -> List[RegisterSpec]:
        return [RegisterSpec("meter_usage", Consistency.SRO, capacity=4096)]

    def process(self, ctx: PacketContext) -> Decision:
        flow = self.flow_of(ctx)
        if flow is None:
            return self.forward()
        handle = self.handles["meter_usage"]
        handle.write(flow.src_ip, (handle.read(flow.src_ip) or 0) + 1)
        return self.forward()


# ----------------------------------------------------------------------
# Neutrality digests
# ----------------------------------------------------------------------

def _world_digest(world, state_names: Sequence[str]) -> str:
    """Event-history digest of an NF world run: kernel event count, every
    host's injection count, and the named groups' replica states."""
    stores = []
    for name in state_names:
        spec = world.deployment.spec_by_name(name)
        if spec.consistency is Consistency.EWO:
            replicas = world.deployment.ewo_states(spec)
        else:
            replicas = world.deployment.sro_stores(spec)
        stores.append(
            tuple(
                tuple(sorted(replica.items(), key=lambda kv: repr(kv[0])))
                for replica in replicas
            )
        )
    history = (
        world.sim.events_processed,
        tuple(h.sent_count for h in world.clients + world.servers),
        tuple(stores),
    )
    return hashlib.sha256(repr(history).encode("utf-8")).hexdigest()


def _neutrality_check(seed: int = 4242) -> Dict[str, Any]:
    """Same seed, profiler off vs on: the digests must match exactly."""

    def run(**kwargs):
        world = build_nf_world(seed=seed, **kwargs)
        world.deployment.install_nf(FirewallNF)
        _drive_zipf_flows(world)
        return world

    baseline = _world_digest(run(), ["fw_conntrack"])
    profiler = AccessProfiler()
    instrumented_world = run(access_profiler=profiler)
    instrumented = _world_digest(instrumented_world, ["fw_conntrack"])

    chaos_baseline = run_chaos_soak(1, duration=0.08)
    chaos_instrumented = run_chaos_soak(
        1, duration=0.08, access_profiler=AccessProfiler()
    )
    return {
        "nf_digest": baseline,
        "nf_digest_instrumented": instrumented,
        "nf_match": baseline == instrumented,
        "profiler_events": profiler.events,
        "chaos_digest": chaos_baseline.digest,
        "chaos_digest_instrumented": chaos_instrumented.digest,
        "chaos_match": chaos_baseline.digest == chaos_instrumented.digest,
    }


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------

@dataclass
class AdvisorResult:
    rows: List[Dict[str, Any]]            # advice for every profiled group
    hot_keys: List[Dict[str, Any]]        # deployment-wide ranking (DDoS world)
    demotion: Dict[str, Any]              # the misdeclared-meter advice
    neutrality: Dict[str, Any]
    packets: Dict[str, int] = field(default_factory=dict)
    sample_report: Dict[str, Any] = field(default_factory=dict)


def run_experiment(quick: bool = False) -> AdvisorResult:
    flows = 15 if quick else 30
    rows: List[Dict[str, Any]] = []
    packets_by_nf: Dict[str, int] = {}
    hot_keys: List[Dict[str, Any]] = []
    sample_report: Dict[str, Any] = {}

    def profile(label, install, drive, responders=True, keep_hot_keys=False):
        profiler = AccessProfiler()
        world = build_nf_world(
            seed=2000 + len(packets_by_nf),
            responder_servers=responders,
            access_profiler=profiler,
        )
        install(world)
        drive(world)
        # Denominator: data packets the hosts actually injected (replies
        # included), not per-hop or replication receives.
        packets = sum(h.sent_count for h in world.clients + world.servers)
        packets_by_nf[label] = packets
        advisor = ConsistencyAdvisor(profiler, packets=packets)
        rows.extend(a.as_dict() for a in advisor.advise())
        if keep_hot_keys:
            hot_keys.extend(advisor.hot_keys(limit=8))
            sample_report.update(advisor.report(hot_keys=8))

    profile(
        "NAT",
        lambda w: (w.book.register(NAT_IP, "egress"),
                   w.deployment.install_nf(NatNF, nat_ip=NAT_IP)),
        lambda w: _drive_zipf_flows(w, flows=flows),
    )
    profile(
        "Firewall",
        lambda w: w.deployment.install_nf(FirewallNF),
        lambda w: _drive_zipf_flows(w, flows=flows),
    )

    def drive_ips(world):
        ips = world.deployment.managers[world.ingress.name].nfs[0]
        ips.add_signature(0xBAD)  # the rare control-plane write
        _drive_zipf_flows(world, flows=flows)

    profile(
        "IPS",
        lambda w: w.deployment.install_nf(IpsNF),
        drive_ips,
        responders=False,
    )
    profile(
        "L4 load-balancer",
        lambda w: (w.book.register(VIP, "egress"),
                   w.deployment.install_nf(
                       LoadBalancerNF, vip=VIP,
                       dips=["192.168.0.1", "192.168.0.2"])),
        lambda w: _drive_zipf_flows(w, flows=flows, dst_ips=[VIP]),
        responders=False,
    )
    profile(
        "DDoS detection",
        lambda w: w.deployment.install_nf(DdosDetectorNF),
        lambda w: _drive_zipf_flows(w, flows=flows),
        responders=False,
        keep_hot_keys=True,
    )
    profile(
        "Rate limiter",
        # the enforcement window is long relative to the packet rate, so
        # meter reads are measured as per-window, not per-packet
        lambda w: w.deployment.install_nf(RateLimiterNF, limit_bps=1e9, window=20e-3),
        lambda w: _drive_zipf_flows(w, flows=flows, gap=100e-6),
        responders=False,
    )

    # The worked example: a write-per-packet meter misdeclared as SRO.
    demotion_profiler = AccessProfiler()
    world = build_nf_world(
        seed=2100, responder_servers=False, access_profiler=demotion_profiler
    )
    world.deployment.install_nf(MeterSroNF)
    _drive_zipf_flows(world, flows=flows, gap=100e-6)
    demotion_packets = sum(h.sent_count for h in world.clients + world.servers)
    demotion = ConsistencyAdvisor(
        demotion_profiler, packets=demotion_packets
    ).advice_for("meter_usage").as_dict()

    return AdvisorResult(
        rows=rows,
        hot_keys=hot_keys,
        demotion=demotion,
        neutrality=_neutrality_check(),
        packets=packets_by_nf,
        sample_report=sample_report,
    )


def report(result: AdvisorResult) -> None:
    print_header(
        "T2",
        "Consistency advisor: Table 1 re-derived from live traffic",
        "the streaming profiler recovers every NF's write/read frequency "
        "and register type with zero hand labels",
    )
    print_table(
        ["State", "NF", "Write freq", "Read freq", "Pattern",
         "Declared", "Advised", "Confidence"],
        [
            (r["name"], r["nf"] or "-", r["write_freq"], r["read_freq"],
             r["pattern"], r["declared"].upper(), r["recommended"].upper(),
             r["confidence"])
            for r in result.rows
        ],
    )
    d = result.demotion
    print(
        f"misdeclared meter: {d['name']} declared {d['declared'].upper()} "
        f"-> advised {d['recommended'].upper()} "
        f"({d['writes_per_packet']:.2f} writes/pkt, "
        f"confidence {d['confidence']})"
    )
    n = result.neutrality
    print(
        f"observer neutrality: NF digest match={n['nf_match']} "
        f"({n['profiler_events']} profiler events), "
        f"chaos digest match={n['chaos_match']}"
    )
    if result.sample_report:
        print()
        print(render_access_profile(result.sample_report, title="DDoS world"))


def check_result(result: AdvisorResult) -> None:
    by_state = {r["name"]: r for r in result.rows}
    for state, (write_freq, read_freq) in PAPER_TABLE1.items():
        advice = by_state[state]
        assert advice["write_freq"] == write_freq, (
            f"{state}: write freq {advice['write_freq']!r} != {write_freq!r}"
        )
        assert advice["read_freq"] == read_freq, (
            f"{state}: read freq {advice['read_freq']!r} != {read_freq!r}"
        )
        assert advice["recommended"] == EXPECTED_CLASS[state], (
            f"{state}: advised {advice['recommended']} != {EXPECTED_CLASS[state]}"
        )
        assert advice["confidence"] == "high", f"{state}: low confidence"
        assert not advice["mismatch"], f"{state}: spurious mismatch"
    # The misdeclared meter is caught with an SRO -> EWO demotion.
    assert result.demotion["declared"] == "sro"
    assert result.demotion["recommended"] == "ewo"
    assert result.demotion["mismatch"] and result.demotion["confidence"] == "high"
    # Profiling never perturbs what it measures.
    assert result.neutrality["nf_match"], "profiler perturbed the NF world"
    assert result.neutrality["profiler_events"] > 0
    assert result.neutrality["chaos_match"], "profiler perturbed the chaos soak"
    # The Zipf drive's heavy hitters surface in the hot-key ranking.
    assert result.hot_keys, "no hot keys ranked"
    accesses = [k["reads"] + k["writes"] + k["tail_estimate"] for k in result.hot_keys]
    assert accesses == sorted(accesses, reverse=True)


@pytest.mark.benchmark(group="experiment")
def test_advisor_rederives_table1(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(result)
    check_result(result)


@pytest.mark.benchmark(group="advisor")
def test_benchmark_access_advisor(benchmark):
    benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="halve the flow count per NF world",
    )
    args = parser.parse_args(argv)
    result = run_experiment(quick=args.quick)
    report(result)
    try:
        check_result(result)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    emit_json(
        "T2",
        "Consistency advisor re-derives Table 1 from live traffic",
        result,
    )
    print("T2: advisor reproduced Table 1 from traffic alone (zero hand labels)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
