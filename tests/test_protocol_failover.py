"""Tests for failure handling and recovery (paper section 6.3)."""

from __future__ import annotations

import pytest

from repro.core.registers import Consistency, EwoMode, RegisterSpec


def fail_and_note(deployment, name):
    deployment.controller.note_failure_time(name)
    deployment.fail_switch(name)


class TestFailureDetection:
    def test_controller_detects_within_bound(self, make_deployment):
        """Heartbeat detection latency is bounded by period + timeout."""
        dep, _, _ = make_deployment(3)
        dep.sim.run(until=0.001)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.01)
        event = dep.controller.last_failure()
        assert event is not None and event.switch == "s1"
        assert not event.false_positive
        assert event.detection_latency <= dep.controller.detection_bound + 1e-9

    def test_oracle_mode_detects_within_one_period(self, make_deployment):
        dep, _, _ = make_deployment(3, detection="oracle")
        dep.sim.run(until=0.001)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.01)
        event = dep.controller.last_failure()
        assert event is not None and event.switch == "s1"
        assert event.detection_latency <= dep.controller.detect_period + 1e-9

    def test_detection_repairs_all_chains(self, make_deployment):
        dep, _, _ = make_deployment(3)
        a = dep.declare(RegisterSpec("a", Consistency.SRO))
        b = dep.declare(RegisterSpec("b", Consistency.ERO))
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.01)
        assert "s1" not in dep.chains[a.group_id]
        assert "s1" not in dep.chains[b.group_id]
        event = dep.controller.last_failure()
        assert sorted(event.chains_repaired) == [a.group_id, b.group_id]

    def test_detection_updates_multicast_groups(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        fail_and_note(dep, "s2")
        dep.sim.run(until=0.01)
        assert "s2" not in dep.multicast.get(spec.group_id)
        assert dep.controller.last_failure().multicast_groups_updated == 1


class TestSroFailover:
    def test_writes_resume_after_middle_switch_fails(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "before", 1)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        dep.manager("s0").register_write(spec, "after", 2)
        dep.sim.run(until=0.2)
        live_stores = dep.sro_stores(spec)
        assert all(store.get("after") == 2 for store in live_stores)
        assert all(store.get("before") == 1 for store in live_stores)

    def test_in_flight_write_retried_through_repaired_chain(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        # fail the middle switch the instant a write is in flight
        dep.manager("s0").register_write(spec, "k", "v")
        dep.sim.run(until=21e-6)  # write request punted, not yet committed
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.5)
        stats = dep.manager("s0").sro.stats_for(spec.group_id)
        assert stats.writes_committed == 1
        assert all(store.get("k") == "v" for store in dep.sro_stores(spec))

    def test_head_failure_promotes_successor(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        fail_and_note(dep, "s0")
        dep.sim.run(until=0.01)
        assert dep.chains[spec.group_id].head == "s1"
        dep.manager("s2").register_write(spec, "k", 9)
        dep.sim.run(until=0.2)
        assert all(store.get("k") == 9 for store in dep.sro_stores(spec))

    def test_tail_failure_moves_read_tail(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s2")
        dep.sim.run(until=0.02)
        chain = dep.chains[spec.group_id]
        assert chain.read_tail == "s1" and chain.ack_tail == "s1"
        assert dep.manager("s1").register_read(spec, "k", None) == 1


class TestSroRecovery:
    def test_recovered_switch_catches_up_and_promotes(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(20):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.1)
        fail_and_note(dep, "s2")
        dep.sim.run(until=0.11)
        # writes continue while s2 is down
        for i in range(20, 30):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.2)
        event = dep.controller.recover_switch("s2")
        dep.sim.run(until=0.5)
        # s2 has the full state including writes made while it was down
        store = dep.manager("s2").sro.groups[spec.group_id].store
        assert len(store) == 30
        assert store == dep.manager("s0").sro.groups[spec.group_id].store
        # and it was promoted back to read tail
        assert dep.chains[spec.group_id].read_tail == "s2"
        assert event.sro_recovery_time(spec.group_id) is not None
        assert dep.manager("s2").sro.groups[spec.group_id].catching_up is False

    def test_writes_during_catchup_reach_recovering_switch(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        dep.manager("s0").register_write(spec, "old", 1)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s2")
        dep.sim.run(until=0.06)
        dep.controller.recover_switch("s2")
        dep.sim.run(until=0.065)  # catch-up begun, snapshot not yet done
        dep.manager("s1").register_write(spec, "during", 2)
        dep.sim.run(until=0.5)
        store = dep.manager("s2").sro.groups[spec.group_id].store
        assert store.get("during") == 2
        assert store.get("old") == 1

    def test_snapshot_transfer_completes(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        for i in range(5):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.06)
        dep.controller.recover_switch("s1")
        dep.sim.run(until=0.5)
        assert dep.failover.transfers_completed >= 1
        transfer = dep.failover.transfer_for(spec.group_id, "s1")
        assert transfer is not None and transfer.done
        assert transfer.total_entries == 5

    def test_recover_unfailed_switch_rejected(self, make_deployment):
        dep, _, _ = make_deployment(2)
        with pytest.raises(ValueError):
            dep.controller.recover_switch("s0")


class TestEwoFailover:
    def test_counter_survives_replica_failure(self, make_deployment):
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        for i in range(30):
            dep.manager(f"s{i % 3}").register_increment(spec, "k", 1)
        dep.sim.run(until=0.02)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.05)
        live_states = dep.ewo_states(spec)
        assert all(state["k"] == 30 for state in live_states)

    def test_failed_replica_slot_counts_preserved(self, make_deployment):
        """s1's own increments survive its failure: the other replicas
        hold its slot values (the CRDT vector's whole point)."""
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s1").register_increment(spec, "k", 17)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        assert all(state["k"] == 17 for state in dep.ewo_states(spec))

    def test_recovered_replica_refills_from_sync(self, make_deployment):
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s0").register_increment(spec, "k", 10)
        dep.manager("s1").register_increment(spec, "k", 7)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        dep.controller.recover_switch("s1")  # wipes s1's state
        assert dep.manager("s1").ewo.local_state(spec.group_id) == {}
        dep.sim.run(until=0.1)  # wait a few sync rounds
        # s1's own slot value came back from its peers
        assert dep.manager("s1").ewo.local_state(spec.group_id)["k"] == 17

    def test_sync_generator_restarts_after_recovery(self, make_deployment):
        dep, _, _ = make_deployment(2, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s0").register_increment(spec, "k", 1)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.01)
        dep.controller.recover_switch("s1")
        dep.sim.run(until=0.05)
        dep.manager("s1").register_increment(spec, "k", 1)
        dep.sim.run(until=0.1)
        stats = dep.manager("s1").ewo.stats_for(spec.group_id)
        assert stats.sync_packets_sent > 0


class TestRoutingRepair:
    def test_traffic_reroutes_around_failed_switch(self, make_deployment):
        """'We regain connectivity by reprogramming the routing of the
        failed switch neighbors.'"""
        dep, topo, switches = make_deployment(4)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.01)
        # full mesh: s0 still reaches s2 directly; routing table reflects it
        assert dep.routing.next_hop("s0", "s2") == "s2"
        assert dep.routing.next_hop("s0", "s1") is None
