"""Shared infrastructure for the experiment benchmarks.

Every benchmark file reproduces one experiment from DESIGN.md's index
(which in turn maps to a table, figure, or quantitative claim of the
paper).  Conventions:

* each file defines ``run_experiment(...)`` returning a result object,
  a ``test_*`` that asserts the paper's qualitative *shape* (who wins,
  by roughly what factor, where crossovers fall), and a
  ``test_benchmark_*`` hooking the core computation into
  pytest-benchmark;
* results are printed as aligned tables via :func:`print_table` so
  ``pytest benchmarks/ --benchmark-only -s`` regenerates every table
  the repo reports in EXPERIMENTS.md;
* benchmarks additionally call :func:`emit_json` so every run leaves a
  machine-readable ``BENCH_<id>.json`` sidecar (results + an optional
  metrics-registry snapshot) in ``bench_results/`` — the artifacts CI
  uploads to track the perf trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

# Resolve imports relative to this file rather than the caller's CWD, so
# `repro` and `tests.nfworld` import no matter where pytest/python runs.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

__all__ = [
    "print_table",
    "print_header",
    "fmt_us",
    "fmt_rate",
    "fmt_pct",
    "emit_json",
    "to_jsonable",
    "bench_output_dir",
]


def print_header(experiment_id: str, title: str, paper_claim: str) -> None:
    print()
    print("=" * 78)
    print(f"[{experiment_id}] {title}")
    print(f"paper claim: {paper_claim}")
    print("=" * 78)


def print_table(columns: Sequence[str], rows: Iterable[Sequence[Any]], widths: Sequence[int] = None) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    if widths is None:
        widths = [
            max(len(str(col)), *(len(row[i]) for row in rows)) if rows else len(str(col))
            for i, col in enumerate(columns)
        ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    print()


def fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}us"


def fmt_rate(per_second: float) -> str:
    if per_second >= 1e9:
        return f"{per_second / 1e9:.2f}G/s"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.2f}M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.2f}K/s"
    return f"{per_second:.2f}/s"


def fmt_pct(fraction: float) -> str:
    return f"{fraction * 100:.2f}%"


# ----------------------------------------------------------------------
# Machine-readable output
# ----------------------------------------------------------------------


def bench_output_dir() -> str:
    """Where sidecars go: $SWISHMEM_BENCH_DIR or <repo>/bench_results."""
    return os.environ.get(
        "SWISHMEM_BENCH_DIR", os.path.join(_REPO_ROOT, "bench_results")
    )


def to_jsonable(value: Any) -> Any:
    """Best-effort conversion of benchmark result objects to JSON types.

    Handles dataclasses, mappings, sequences, and objects exposing
    ``as_dict``; anything else irreducible falls back to ``str`` so a
    sidecar write never fails on an exotic result field.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return to_jsonable(as_dict())
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    return str(value)


def emit_json(
    experiment_id: str,
    title: str,
    results: Any,
    registry: Any = None,
    extra: Optional[Dict[str, Any]] = None,
    directory: Optional[str] = None,
) -> str:
    """Write ``BENCH_<experiment_id>.json`` and return its path.

    ``registry`` is an optional :class:`repro.obs.MetricsRegistry`
    whose snapshot is embedded under ``"metrics"``.
    """
    directory = directory if directory is not None else bench_output_dir()
    os.makedirs(directory, exist_ok=True)
    payload: Dict[str, Any] = {
        "experiment": experiment_id,
        "title": title,
        "results": to_jsonable(results),
    }
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if extra:
        payload.update(to_jsonable(extra))
    path = os.path.join(directory, f"BENCH_{experiment_id}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[{experiment_id}] wrote {path}")
    return path
