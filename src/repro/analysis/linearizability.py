"""A Wing–Gong linearizability checker for register histories.

Checks, per (group, key), whether the recorded operation history admits
a legal sequential ordering of a read/write register that respects
real-time precedence.  The search is the classic Wing & Gong / Lowe
algorithm: repeatedly pick a *minimal* pending operation (one not
preceded by another incomplete-or-unlinearized operation), try to apply
it to the sequential register specification, and backtrack on failure.

The register specification:

* a ``write(v)`` always succeeds and sets the value;
* a ``read -> v`` is legal only when the current value equals ``v``.

Incomplete writes (crashed writers) are handled the standard way: they
may linearize at any point after invocation, or never (the checker may
skip them entirely).

Complexity is exponential in the worst case but fine for per-key
histories of the sizes our experiments record (hundreds of ops per key);
``max_steps`` bounds runaway searches and raises rather than returning a
wrong verdict.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.history import HistoryRecorder, Operation

__all__ = [
    "check_key_linearizable",
    "check_history",
    "explain_violation",
    "LinearizabilityReport",
]


class _SearchBudgetExceeded(RuntimeError):
    """The backtracking search exceeded ``max_steps``."""


def check_key_linearizable(
    operations: Sequence[Operation],
    initial: Any = None,
    max_steps: int = 2_000_000,
) -> bool:
    """Is this single-key history linearizable w.r.t. a register?

    ``operations`` may mix complete and incomplete ops; order of the
    input list is irrelevant (timestamps rule).

    The search branches only over *writes*.  Reads are handled with two
    sound register-specific rules that keep read-heavy histories (the
    common case here) tractable:

    * a minimal read that returns the current value can be committed
      greedily — removing it first can never invalidate a linearization
      that existed, because a read adds only precedence constraints and
      making it earliest relaxes them;
    * a minimal read that does NOT match the current value forces a
      write to linearize first; if every remaining write is real-time
      preceded by that read, the state is a dead end.
    """
    complete = [op for op in operations if op.complete]
    pending_writes = [op for op in operations if not op.complete and op.kind == "write"]
    # Incomplete reads constrain nothing: they may simply never have
    # taken effect, and no other operation's legality depends on them.
    ops = complete + pending_writes
    optional = frozenset(op.op_id for op in pending_writes)
    if not ops:
        return True

    by_id = {op.op_id: op for op in ops}
    steps = 0
    seen_states: set = set()

    def precedes(a: Operation, b: Operation) -> bool:
        """Real-time order: a finished before b began.  Incomplete ops
        have open-ended intervals (concurrent with all later ops)."""
        return a.complete and a.completed_at < b.invoked_at

    def is_minimal(op: Operation, remaining: frozenset) -> bool:
        for other_id in remaining:
            other = by_id[other_id]
            if other is not op and precedes(other, op):
                return False
        return True

    def search(remaining: frozenset, value_marker: Any) -> bool:
        nonlocal steps
        steps += 1
        if steps > max_steps:
            raise _SearchBudgetExceeded(
                f"linearizability search exceeded {max_steps} steps"
            )
        # Greedily consume minimal reads that match the current value.
        changed = True
        while changed:
            changed = False
            for op_id in list(remaining):
                op = by_id[op_id]
                if op.kind == "read" and op.value == value_marker and is_minimal(op, remaining):
                    remaining = remaining - {op_id}
                    changed = True
        if not remaining:
            return True
        state_key = (remaining, repr(value_marker))
        if state_key in seen_states:
            return False
        seen_states.add(state_key)
        remaining_ops = [by_id[i] for i in remaining]
        writes = [op for op in remaining_ops if op.kind == "write"]
        # Dead end: a minimal mismatching read that precedes every write
        # can never be satisfied.
        for op in remaining_ops:
            if op.kind == "read" and is_minimal(op, remaining):
                if all(precedes(op, w) for w in writes):
                    return False
        # Branch over minimal writes (and over skipping optional ones).
        for op in writes:
            if not is_minimal(op, remaining):
                continue
            rest = remaining - {op.op_id}
            if search(rest, op.value):
                return True
            if op.op_id in optional and search(rest, value_marker):
                return True
        return False

    return search(frozenset(by_id), initial)


class LinearizabilityReport:
    """Results of checking a whole history, key by key."""

    def __init__(self) -> None:
        self.checked_keys = 0
        self.linearizable_keys = 0
        self.violations: List[Tuple[int, Any]] = []
        #: Per-violation human-readable explanations (operation history
        #: plus causal timeline when a flight recorder was supplied),
        #: parallel to :attr:`violations`.
        self.explanations: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violation_rate(self) -> float:
        if not self.checked_keys:
            return 0.0
        return len(self.violations) / self.checked_keys

    def explain(self) -> str:
        """Every violation's full story, ready for an assertion message."""
        if self.ok:
            return "linearizable: no violations"
        return "\n\n".join(self.explanations)

    def __repr__(self) -> str:
        return (
            f"<LinearizabilityReport {self.linearizable_keys}/{self.checked_keys} keys ok, "
            f"{len(self.violations)} violations>"
        )


def explain_violation(
    operations: Sequence[Operation],
    group: int,
    key: Any,
    flight_recorder: Any = None,
) -> str:
    """Render one non-linearizable key's evidence: every operation's
    invocation/response interval in invocation order, followed by the
    causally ordered flight-recorder timeline when one is available.

    This is what replaces a bare ``assert report.ok`` failure: instead
    of "key k7 is not linearizable", the reader sees which read returned
    which stale value between which writes, and — with the recorder on —
    which switch held the pending bit and where the chain hop died.
    """
    lines = [f"non-linearizable history for group={group} key={key!r}:"]
    for op in sorted(operations, key=lambda o: (o.invoked_at, o.op_id)):
        end = f"{op.completed_at * 1e6:10.2f}us" if op.complete else "   (never)"
        lines.append(
            f"  [{op.invoked_at * 1e6:10.2f}us -> {end}] "
            f"{op.kind:<5s} @{op.node:<6s} {op.key!r} = {op.value!r}"
            f"{'' if op.complete else '  [incomplete]'}"
        )
    if flight_recorder is not None and getattr(flight_recorder, "enabled", False):
        lines.append(flight_recorder.render_timeline(group=group, key=key))
    return "\n".join(lines)


def check_history(
    recorder: HistoryRecorder,
    initial: Any = None,
    group: Optional[int] = None,
    max_steps: int = 2_000_000,
    flight_recorder: Any = None,
) -> LinearizabilityReport:
    """Check every (group, key) sub-history independently.

    Per-register linearizability is exactly what the paper promises for
    SRO ("SRO provides per-register linearizability", section 6.1) —
    there is no cross-key ordering guarantee to check.

    Pass the deployment's ``flight_recorder`` to get each violation's
    causal timeline bundled into :attr:`LinearizabilityReport.explanations`.
    """
    report = LinearizabilityReport()
    for key_group, key in recorder.keys():
        if group is not None and key_group != group:
            continue
        operations = recorder.for_key(key_group, key)
        report.checked_keys += 1
        if check_key_linearizable(operations, initial=initial, max_steps=max_steps):
            report.linearizable_keys += 1
        else:
            report.violations.append((key_group, key))
            report.explanations.append(
                explain_violation(
                    operations, key_group, key, flight_recorder=flight_recorder
                )
            )
    return report
