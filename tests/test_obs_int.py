"""Tests for INT-style per-packet telemetry: hop stamping along a
switch chain, wire-size accounting, the max-hop truncation budget, path
decoding, and the sink's metric feed."""

from __future__ import annotations

import pytest

from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_tcp_packet
from repro.net.routing import RoutingTable
from repro.net.topology import Topology, build_chain
from repro.obs.inttel import (
    INT_HOP_BYTES,
    INT_SHIM_BYTES,
    IntHopRecord,
    IntSink,
    IntTelemetry,
    decode_path,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

LINK_LATENCY = 5e-6


def make_chain_fabric(length=3, int_enabled=True, max_hops=16):
    """h0 - s0 - s1 - ... - s{n-1} - h1, with INT on every switch."""
    sim = Simulator()
    topo = Topology(sim, SeededRng(3))
    book = AddressBook()
    switches = build_chain(
        topo, lambda name: PisaSwitch(name, sim), length, latency=LINK_LATENCY
    )
    src = topo.add_node(EndHost("h0", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("h1", sim, "10.0.0.2", book))
    topo.connect("h0", switches[0].name, LINK_LATENCY)
    topo.connect("h1", switches[-1].name, LINK_LATENCY)
    routing = RoutingTable(topo)
    for switch in switches:
        switch.routing = routing
        switch.address_book = book
        switch.int_enabled = int_enabled
        switch.int_max_hops = max_hops
    return sim, switches, src, dst


class TestIntStack:
    def test_wire_size_grows_per_hop(self):
        telemetry = IntTelemetry()
        assert telemetry.wire_size == INT_SHIM_BYTES
        telemetry.push(IntHopRecord("s0", 0.0, 1e-6))
        telemetry.push(IntHopRecord("s1", 2e-6, 3e-6))
        assert telemetry.wire_size == INT_SHIM_BYTES + 2 * INT_HOP_BYTES

    def test_push_past_budget_truncates(self):
        telemetry = IntTelemetry(max_hops=2)
        assert telemetry.push(IntHopRecord("s0", 0.0, 1e-6))
        assert telemetry.push(IntHopRecord("s1", 2e-6, 3e-6))
        assert not telemetry.push(IntHopRecord("s2", 4e-6, 5e-6))
        assert telemetry.path == ["s0", "s1"]
        assert telemetry.truncated == 1

    def test_decode_separates_switch_and_link_time(self):
        telemetry = IntTelemetry()
        telemetry.push(IntHopRecord("s0", 10e-6, 12e-6, queue_depth=1, state_ops=2))
        telemetry.push(IntHopRecord("s1", 15e-6, 16e-6))
        decoded = decode_path(telemetry, delivered_at=20e-6)
        assert decoded["path"] == ["s0", "s1"]
        assert decoded["switch_time"] == pytest.approx(3e-6)  # 2us + 1us
        # 3us between the hops plus the 4us last mile to the sink
        assert decoded["link_time"] == pytest.approx(7e-6)
        assert decoded["total_latency"] == pytest.approx(10e-6)
        assert decoded["state_ops"] == 2
        assert decoded["hops"][0]["queue_depth"] == 1


class TestIntOnChain:
    def test_three_switch_chain_stamps_every_hop(self):
        sim, switches, src, dst = make_chain_fabric(length=3)
        registry = MetricsRegistry()
        sink = IntSink(sim, registry)
        dst.on_receive = sink

        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()

        assert len(dst.received) == 1
        # the sink strips telemetry before the application sees the packet
        assert dst.received[0].packet.int_data is None
        assert len(sink.decoded) == 1
        decoded = sink.decoded[0]
        assert decoded["path"] == ["s0", "s1", "s2"]
        assert decoded["truncated"] == 0
        # two inter-switch links plus the last mile to h1, each >= latency
        assert decoded["link_time"] >= 3 * LINK_LATENCY
        # infinite service rate: the pass itself is instantaneous, so hop
        # time is pure queue wait (zero here — see the finite-rate test)
        assert all(hop["hop_latency"] >= 0 for hop in decoded["hops"])
        # decoded time accounts for the full first-ingress-to-delivery span
        assert decoded["total_latency"] == pytest.approx(
            decoded["switch_time"] + decoded["link_time"]
        )
        assert decoded["total_latency"] > 0
        # the sink fed its histograms
        assert registry.value("counter", "int.paths_decoded", "int-sink") == 1
        hist = registry.get("histogram", "int.path_latency_seconds", "int-sink")
        assert hist.count == 1

    def test_finite_service_rate_shows_up_as_hop_latency(self):
        sim, switches, src, dst = make_chain_fabric(length=3)
        # the middle switch serves one packet per microsecond
        switches[1].pipeline_rate_pps = 1e6
        sink = IntSink(sim)
        dst.on_receive = sink

        for port in (1, 2, 3):
            src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", port, 80))
        sim.run()

        assert len(sink.decoded) == 3
        # every packet waited at least one service slot at s1...
        for decoded in sink.decoded:
            s1 = next(h for h in decoded["hops"] if h["node"] == "s1")
            assert s1["hop_latency"] >= 1e-6
        # ...and the back-to-back burst queued behind the first packet
        depths = [
            next(h for h in d["hops"] if h["node"] == "s1")["queue_depth"]
            for d in sink.decoded
        ]
        assert max(depths) > 0

    def test_max_hop_budget_truncates_on_path(self):
        sim, switches, src, dst = make_chain_fabric(length=4, max_hops=2)
        registry = MetricsRegistry()
        sink = IntSink(sim, registry)
        dst.on_receive = sink

        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()

        decoded = sink.decoded[0]
        assert decoded["path"] == ["s0", "s1"]
        assert decoded["truncated"] == 2
        assert registry.value("counter", "int.hops_truncated", "int-sink") == 2

    def test_int_disabled_adds_nothing(self):
        sim, switches, src, dst = make_chain_fabric(length=3, int_enabled=False)
        sink = IntSink(sim)
        dst.on_receive = sink

        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        base_size = packet.wire_size
        src.inject(packet)
        sim.run()

        assert sink.decoded == []
        assert dst.received[0].packet.int_data is None
        assert dst.received[0].packet.wire_size == base_size

    def test_int_overhead_counts_on_the_wire(self):
        sim, switches, src, dst = make_chain_fabric(length=2)
        seen_sizes = []
        dst.on_receive = lambda packet, from_node: seen_sizes.append(
            packet.wire_size
        )
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        base_size = packet.wire_size
        src.inject(packet)
        sim.run()
        # on delivery the packet still carries shim + one record per switch
        assert seen_sizes == [base_size + INT_SHIM_BYTES + 2 * INT_HOP_BYTES]
