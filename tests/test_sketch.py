"""Tests for count-min sketch, Bloom filter, heavy hitters, entropy."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch
from repro.sketch.heavyhitter import (
    HeavyHitterTracker,
    empirical_entropy,
    normalized_entropy,
)


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(depth=4, width=64, seed=1)
        truth = {}
        for i in range(200):
            key = f"k{i % 30}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(depth=4, width=4096, seed=1)
        sketch.add("a", 5)
        sketch.add("b", 3)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3
        assert sketch.estimate("never") == 0

    def test_merge_sum_combines_disjoint_streams(self):
        a = CountMinSketch(seed=2)
        b = CountMinSketch(seed=2)
        a.add("x", 4)
        b.add("x", 6)
        a.merge_sum(b)
        assert a.estimate("x") == 10
        assert a.items_added == 10

    def test_merge_max_idempotent(self):
        a = CountMinSketch(seed=2)
        b = CountMinSketch(seed=2)
        b.add("x", 5)
        assert a.merge_max(b) is True
        assert a.merge_max(b) is False  # re-delivery harmless
        assert a.estimate("x") == 5

    def test_merge_incompatible_rejected(self):
        a = CountMinSketch(seed=1)
        b = CountMinSketch(seed=2)
        with pytest.raises(ValueError):
            a.merge_sum(b)
        c = CountMinSketch(depth=2, seed=1)
        with pytest.raises(ValueError):
            a.merge_max(c)

    def test_copy_independent(self):
        a = CountMinSketch()
        a.add("x")
        b = a.copy()
        b.add("x")
        assert a.estimate("x") == 1 and b.estimate("x") == 2

    def test_clear(self):
        sketch = CountMinSketch()
        sketch.add("x", 10)
        sketch.clear()
        assert sketch.estimate("x") == 0 and sketch.items_added == 0

    def test_rows_roundtrip(self):
        a = CountMinSketch(depth=2, width=8)
        a.add("x", 3)
        b = CountMinSketch(depth=2, width=8)
        b.load_rows(a.rows())
        assert a == b
        with pytest.raises(ValueError):
            b.load_rows([[0] * 4])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch().add("x", -1)

    def test_state_bytes(self):
        assert CountMinSketch(depth=4, width=100, counter_bytes=4).state_bytes == 1600

    @given(st.lists(st.sampled_from("abcdef"), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_overestimate_invariant_property(self, keys):
        sketch = CountMinSketch(depth=3, width=16, seed=7)
        truth = {}
        for key in keys:
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        assert all(sketch.estimate(k) >= c for k, c in truth.items())


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(nbits=1024, num_hashes=3, seed=1)
        keys = [f"sig{i}" for i in range(50)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_capacity(1000, fp_rate=0.01, seed=1)
        for i in range(1000):
            bloom.add(f"member{i}")
        false_positives = sum(1 for i in range(10000) if f"other{i}" in bloom)
        assert false_positives / 10000 < 0.05

    def test_for_capacity_sizing(self):
        bloom = BloomFilter.for_capacity(100, fp_rate=0.01)
        assert bloom.nbits > 800  # ~9.6 bits/element at 1%
        assert bloom.num_hashes >= 5

    def test_merge_or(self):
        a = BloomFilter(nbits=256, num_hashes=2, seed=3)
        b = BloomFilter(nbits=256, num_hashes=2, seed=3)
        a.add("x")
        b.add("y")
        assert a.merge_or(b) is True
        assert "x" in a and "y" in a
        assert a.merge_or(b) is False  # idempotent

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(nbits=128, seed=1).merge_or(BloomFilter(nbits=256, seed=1))

    def test_fill_ratio(self):
        bloom = BloomFilter(nbits=100, num_hashes=1)
        assert bloom.fill_ratio() == 0.0
        bloom.add("x")
        assert bloom.fill_ratio() == pytest.approx(0.01)

    def test_copy_and_eq(self):
        a = BloomFilter(seed=5)
        a.add("x")
        b = a.copy()
        assert a == b
        b.add("y")
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(nbits=0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, fp_rate=1.5)


class TestEntropy:
    def test_uniform_distribution_max_entropy(self):
        counts = {i: 10 for i in range(16)}
        assert empirical_entropy(counts) == pytest.approx(4.0)
        assert normalized_entropy(counts) == pytest.approx(1.0)

    def test_point_mass_zero_entropy(self):
        assert empirical_entropy({"victim": 1000}) == 0.0
        assert normalized_entropy({"victim": 1000}) == 0.0

    def test_empty_counts(self):
        assert empirical_entropy({}) == 0.0
        assert normalized_entropy({}) == 0.0

    def test_skew_reduces_entropy(self):
        uniform = normalized_entropy({i: 10 for i in range(10)})
        skewed = normalized_entropy({0: 910, **{i: 10 for i in range(1, 10)}})
        assert skewed < uniform

    def test_zero_counts_ignored(self):
        assert empirical_entropy({"a": 10, "b": 0}) == 0.0


class TestHeavyHitter:
    def test_tracks_top_keys(self):
        tracker = HeavyHitterTracker(k=3, seed=1)
        for _ in range(100):
            tracker.add("elephant")
        for i in range(50):
            tracker.add(f"mouse{i}")
        top = tracker.top(1)
        assert top[0][0] == "elephant"
        assert top[0][1] >= 100

    def test_eviction_of_weakest(self):
        tracker = HeavyHitterTracker(k=2, seed=1)
        tracker.add("a", 1)
        tracker.add("b", 2)
        tracker.add("c", 50)
        assert "c" in tracker
        assert len(tracker.top()) == 2

    def test_top_n_ordering(self):
        tracker = HeavyHitterTracker(k=4, seed=1)
        tracker.add("a", 5)
        tracker.add("b", 10)
        tracker.add("c", 1)
        counts = [count for _, count in tracker.top()]
        assert counts == sorted(counts, reverse=True)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HeavyHitterTracker(k=0)
