"""Tests for the section 9 directory-service extension wired into EWO."""

from __future__ import annotations

import pytest

from repro.core.directory import DirectoryService
from repro.core.registers import Consistency, EwoMode, RegisterSpec


def declare_partial(deployment, **kwargs):
    return deployment.declare(
        RegisterSpec(
            "pctr",
            Consistency.EWO,
            ewo_mode=EwoMode.COUNTER,
            partial_replication=True,
            **kwargs,
        )
    )


@pytest.fixture
def world(make_deployment):
    dep, topo, switches = make_deployment(4, sync_period=1e-3)
    directory = DirectoryService(dep.switch_names)
    dep.attach_directory(directory)
    spec = declare_partial(dep)
    return dep, directory, spec


class TestDirectoryAttachment:
    def test_unknown_switches_rejected(self, make_deployment):
        dep, _, _ = make_deployment(2)
        with pytest.raises(ValueError):
            dep.attach_directory(DirectoryService(["s0", "zz"]))

    def test_without_directory_partial_spec_broadcasts(self, make_deployment):
        """partial_replication without a directory degrades gracefully to
        full broadcast (the base design)."""
        dep, _, _ = make_deployment(3)
        spec = declare_partial(dep)
        dep.manager("s0").register_increment(spec, "k", 1)
        dep.sim.run(until=0.005)
        assert all(s.get("k") == 1 for s in dep.ewo_states(spec))


class TestPartialUpdates:
    def test_update_reaches_only_replicas(self, world):
        dep, directory, spec = world
        directory.place(spec.group_id, "k", ["s0", "s1"])
        dep.manager("s0").register_increment(spec, "k", 5)
        dep.sim.run(until=0.0005)  # broadcast delivered, before any sync
        assert dep.manager("s1").ewo.local_state(spec.group_id).get("k") == 5
        assert dep.manager("s2").ewo.local_state(spec.group_id).get("k") is None
        assert dep.manager("s3").ewo.local_state(spec.group_id).get("k") is None

    def test_unplaced_key_goes_everywhere(self, world):
        dep, directory, spec = world
        dep.manager("s0").register_increment(spec, "unplaced", 2)
        dep.sim.run(until=0.0005)
        for name in ("s1", "s2", "s3"):
            assert dep.manager(name).ewo.local_state(spec.group_id)["unplaced"] == 2

    def test_fanout_reduced(self, world):
        dep, directory, spec = world
        directory.place(spec.group_id, "local", ["s0", "s1"])
        stats = dep.manager("s0").ewo.stats_for(spec.group_id)
        dep.manager("s0").register_increment(spec, "local", 1)
        assert stats.update_packets_sent == 1  # one target, not three

    def test_sync_respects_placement(self, world):
        dep, directory, spec = world
        directory.place(spec.group_id, "k", ["s0", "s1"])
        dep.manager("s0").register_increment(spec, "k", 7)
        dep.sim.run(until=0.05)  # many sync rounds
        # gossip never leaks the key to non-replicas
        assert dep.manager("s2").ewo.local_state(spec.group_id).get("k") is None
        assert dep.manager("s3").ewo.local_state(spec.group_id).get("k") is None
        # while replicas stay converged
        assert dep.manager("s1").ewo.local_state(spec.group_id)["k"] == 7

    def test_sync_heals_replicas_under_loss(self, make_deployment):
        dep, _, _ = make_deployment(4, loss_rate=0.5, sync_period=1e-3)
        directory = DirectoryService(dep.switch_names)
        dep.attach_directory(directory)
        spec = declare_partial(dep)
        directory.place(spec.group_id, "k", ["s0", "s1", "s2"])
        for _ in range(10):
            dep.manager("s0").register_increment(spec, "k", 1)
        dep.sim.run(until=0.5)
        for name in ("s1", "s2"):
            assert dep.manager(name).ewo.local_state(spec.group_id).get("k") == 10

    def test_migration_moves_future_updates(self, world):
        dep, directory, spec = world
        directory.place(spec.group_id, "k", ["s0", "s1"])
        dep.manager("s0").register_increment(spec, "k", 1)
        dep.sim.run(until=0.0005)
        directory.migrate(spec.group_id, "k", ["s0", "s2"])
        dep.manager("s0").register_increment(spec, "k", 1)
        dep.sim.run(until=0.0010)
        # the new replica received the update (it merges full slot value,
        # so it catches up to the complete count despite joining late)
        assert dep.manager("s2").ewo.local_state(spec.group_id).get("k") == 2

    def test_migration_data_movement_via_gossip(self, world):
        """Migrating a quiescent key still moves its data: any switch
        holding the key gossips it to the new replica set ('migrating
        data as needed', section 9, with no extra machinery)."""
        dep, directory, spec = world
        directory.place(spec.group_id, "cold", ["s0", "s1"])
        dep.manager("s0").register_increment(spec, "cold", 9)
        dep.sim.run(until=0.002)
        directory.migrate(spec.group_id, "cold", ["s0", "s3"])
        # no further writes; periodic sync alone must fill s3
        dep.sim.run(until=0.05)
        assert dep.manager("s3").ewo.local_state(spec.group_id).get("cold") == 9

    def test_failed_replica_excluded_from_fanout(self, world):
        dep, directory, spec = world
        directory.place(spec.group_id, "k", ["s0", "s1", "s2"])
        dep.controller.note_failure_time("s1")
        dep.fail_switch("s1")
        dep.sim.run(until=0.002)  # detector prunes multicast membership
        stats = dep.manager("s0").ewo.stats_for(spec.group_id)
        before = stats.update_packets_sent
        dep.manager("s0").register_increment(spec, "k", 1)
        assert stats.update_packets_sent == before + 1  # only s2 remains


class TestSavingsAccounting:
    def test_bandwidth_savings_measured(self, make_deployment):
        """Locality-placed keys cut replication bytes versus broadcast."""
        def run(partial: bool) -> int:
            dep, topo, _ = make_deployment(4, sync_period=10.0)
            spec = dep.declare(
                RegisterSpec(
                    f"g{partial}",
                    Consistency.EWO,
                    ewo_mode=EwoMode.COUNTER,
                    partial_replication=partial,
                )
            )
            if partial:
                directory = DirectoryService(dep.switch_names)
                dep.attach_directory(directory)
                for i in range(8):
                    directory.place(spec.group_id, f"k{i}", ["s0", "s1"])
            start = topo.total_bytes_sent()
            for i in range(8):
                for _ in range(5):
                    dep.manager("s0").register_increment(spec, f"k{i}", 1)
            dep.sim.run(until=0.01)
            return topo.total_bytes_sent() - start

        full_bytes = run(False)
        partial_bytes = run(True)
        assert partial_bytes < full_bytes / 2  # fanout 1 vs 3
