"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records during a
simulation run.  Traces serve three purposes in the reproduction:

* debugging protocol interleavings (chain replication has subtle ordering);
* feeding the linearizability checker (``repro.analysis``), which needs
  invocation/response intervals for every register operation;
* producing the per-experiment evidence recorded in EXPERIMENTS.md.

Tracing is cheap when disabled: categories are filtered before the record
is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set

__all__ = ["TraceRecord", "Tracer"]


@dataclass
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    node: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time * 1e6:12.3f}us] {self.node:<12} {self.category:<10} {self.message} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category.

    ``categories=None`` records everything; an empty set records nothing.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._categories: Optional[Set[str]] = (
            None if categories is None else set(categories)
        )
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def enabled(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    def emit(
        self,
        time: float,
        category: str,
        node: str,
        message: str,
        **data: Any,
    ) -> None:
        """Record an event if its category is enabled."""
        if not self.enabled(category):
            return
        record = TraceRecord(time, category, node, message, data)
        self.records.append(record)
        for sink in self._sinks:
            sink(record)

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Attach a callback invoked for every recorded entry (e.g. print)."""
        self._sinks.append(sink)

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def by_node(self, node: str) -> List[TraceRecord]:
        return [r for r in self.records if r.node == node]

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


#: A tracer that records nothing; used as the default everywhere so hot
#: paths never pay for tracing unless an experiment opts in.
NULL_TRACER = Tracer(categories=())
