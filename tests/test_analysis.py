"""Tests for history recording, the linearizability checker, and metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import HistoryRecorder, Operation
from repro.analysis.linearizability import (
    check_history,
    check_key_linearizable,
)
from repro.analysis.metrics import (
    RateMeter,
    SampleSeries,
    convergence_time,
    replica_divergence,
)
from repro.sim.engine import Simulator


def op(op_id, kind, value, start, end, key="k", node="s0"):
    return Operation(
        op_id=op_id,
        kind=kind,
        group=1,
        key=key,
        value=value,
        node=node,
        invoked_at=start,
        completed_at=end,
    )


class TestChecker:
    def test_empty_history_linearizable(self):
        assert check_key_linearizable([])

    def test_simple_sequential_history(self):
        ops = [
            op(1, "write", "a", 0.0, 1.0),
            op(2, "read", "a", 2.0, 2.0),
        ]
        assert check_key_linearizable(ops)

    def test_read_of_initial_value(self):
        ops = [op(1, "read", None, 0.0, 0.0)]
        assert check_key_linearizable(ops, initial=None)

    def test_stale_read_after_write_completes_rejected(self):
        ops = [
            op(1, "write", "new", 0.0, 1.0),
            op(2, "read", "old", 2.0, 2.0),  # strictly after the write
        ]
        assert not check_key_linearizable(ops, initial="old")

    def test_concurrent_read_may_see_either(self):
        write = op(1, "write", "new", 0.0, 10.0)
        assert check_key_linearizable([write, op(2, "read", "old", 5.0, 5.0)], initial="old")
        assert check_key_linearizable([write, op(3, "read", "new", 5.0, 5.0)], initial="old")

    def test_read_order_must_match_write_order(self):
        """Two sequential reads cannot observe values in reverse commit order."""
        ops = [
            op(1, "write", "v1", 0.0, 1.0),
            op(2, "write", "v2", 2.0, 3.0),
            op(3, "read", "v2", 4.0, 4.0),
            op(4, "read", "v1", 5.0, 5.0),  # goes back in time
        ]
        assert not check_key_linearizable(ops)

    def test_pending_write_may_or_may_not_take_effect(self):
        pending = Operation(10, "write", 1, "k", "crashed", "s0", 0.0, None)
        read_old = op(2, "read", None, 5.0, 5.0)
        assert check_key_linearizable([pending, read_old], initial=None)
        read_new = op(3, "read", "crashed", 5.0, 5.0)
        assert check_key_linearizable([pending, read_new], initial=None)

    def test_value_never_written_rejected(self):
        ops = [op(1, "read", "phantom", 1.0, 1.0)]
        assert not check_key_linearizable(ops, initial=None)

    def test_interleaved_writers_consistent(self):
        ops = [
            op(1, "write", "a", 0.0, 2.0, node="s0"),
            op(2, "write", "b", 1.0, 3.0, node="s1"),
            op(3, "read", "b", 4.0, 4.0),
            op(4, "read", "b", 5.0, 5.0),
        ]
        assert check_key_linearizable(ops)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_sequential_write_read_pairs_always_linearizable(self, values):
        ops = []
        time = 0.0
        op_id = 0
        for value in values:
            op_id += 1
            ops.append(op(op_id, "write", value, time, time + 0.5))
            op_id += 1
            ops.append(op(op_id, "read", value, time + 1.0, time + 1.0))
            time += 2.0
        assert check_key_linearizable(ops)


class TestHistoryRecorder:
    def test_instant_and_interval_records(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "k", 5, "s0", 1.0)
        recorder.begin("tok", "write", 1, "k", 6, "s1", 2.0)
        assert len(recorder) == 2
        pending = [o for o in recorder.operations() if not o.complete]
        assert len(pending) == 1
        recorder.complete("tok", 3.0)
        assert all(o.complete for o in recorder.operations())

    def test_abort_leaves_op_incomplete(self):
        recorder = HistoryRecorder()
        recorder.begin("tok", "write", 1, "k", 1, "s0", 0.0)
        recorder.abort("tok")
        assert not recorder.operations()[0].complete
        assert recorder.complete("tok", 5.0) is None

    def test_keys_enumerated_once(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "a", 0, "s0", 0.0)
        recorder.record_instant("read", 1, "a", 0, "s0", 1.0)
        recorder.record_instant("read", 2, "b", 0, "s0", 2.0)
        assert recorder.keys() == [(1, "a"), (2, "b")]

    def test_for_key_filters(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "a", 0, "s0", 0.0)
        recorder.record_instant("read", 1, "b", 0, "s0", 1.0)
        assert len(recorder.for_key(1, "a")) == 1

    def test_check_history_aggregates(self):
        recorder = HistoryRecorder()
        recorder.record_instant("write", 1, "good", 1, "s0", 0.0)
        recorder.record_instant("read", 1, "good", 1, "s0", 1.0)
        recorder.record_instant("read", 1, "bad", "phantom", "s0", 0.0)
        report = check_history(recorder)
        assert report.checked_keys == 2
        assert report.linearizable_keys == 1
        assert report.violations == [(1, "bad")]
        assert report.violation_rate == pytest.approx(0.5)
        assert not report.ok

    def test_check_history_group_filter(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "a", "phantom", "s0", 0.0)
        recorder.record_instant("read", 2, "b", None, "s0", 0.0)
        report = check_history(recorder, group=2)
        assert report.checked_keys == 1 and report.ok


class TestSampleSeries:
    def test_summary_statistics(self):
        series = SampleSeries("latency")
        series.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert series.count == 5
        assert series.mean == pytest.approx(3.0)
        assert series.minimum == 1.0 and series.maximum == 5.0
        assert series.p50 == 3.0
        assert series.stddev == pytest.approx(1.5811, rel=1e-3)

    def test_percentiles(self):
        series = SampleSeries()
        series.extend(range(1, 101))
        assert series.percentile(99) == 99
        assert series.p99 == 99
        assert series.percentile(100) == 100
        with pytest.raises(ValueError):
            series.percentile(150)

    def test_empty_series_safe(self):
        series = SampleSeries()
        assert series.mean == 0.0 and series.p99 == 0.0 and series.stddev == 0.0

    def test_summary_dict(self):
        series = SampleSeries()
        series.add(2.0)
        summary = series.summary()
        assert summary["count"] == 1 and summary["mean"] == 2.0


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        for i in range(11):
            meter.mark(now=i * 0.1, units=100)
        assert meter.rate() == pytest.approx(11 / 1.0)
        assert meter.unit_rate() == pytest.approx(1100 / 1.0)

    def test_explicit_window(self):
        meter = RateMeter()
        meter.mark(0.0)
        meter.mark(1.0)
        assert meter.rate(window=2.0) == pytest.approx(1.0)

    def test_empty_meter(self):
        assert RateMeter().rate() == 0.0
        assert RateMeter().unit_rate() == 0.0


class TestConvergenceHelpers:
    def test_replica_divergence(self):
        assert replica_divergence([{"a": 1}, {"a": 1}]) == 0
        assert replica_divergence([{"a": 1}, {"a": 2}]) == 1
        assert replica_divergence([{"a": 1}, {}]) == 1
        assert replica_divergence([{"a": 1, "b": 2}, {"a": 9, "b": 2}]) == 1

    def test_convergence_time_fires(self):
        sim = Simulator()
        state = {"done": False}
        sim.schedule(0.5, lambda: state.update(done=True))
        elapsed = convergence_time(sim, lambda: state["done"], interval=0.1, timeout=2.0)
        assert elapsed is not None and elapsed >= 0.5

    def test_convergence_timeout(self):
        sim = Simulator()
        elapsed = convergence_time(sim, lambda: False, interval=0.1, timeout=0.5)
        assert elapsed is None
