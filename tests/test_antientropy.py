"""Tests for the anti-entropy subsystem: digest trees, scrub rounds,
online repair, epoch fencing, and the chaos faults that exercise them
(silent corruption and frozen replicas).

The scrubber's contract: every injected divergence is detected and
healed within its bounded window, repairs never resurrect pre-failover
state (epoch fencing), and scrubbing itself is digest-neutral — a
seeded run replays byte-identically with or without instrumentation.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, InvariantSuite
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, DigestTree, EwoMode, RegisterSpec
from repro.crdt.clock import Timestamp
from repro.crdt.lww import LwwRegister
from repro.net.topology import Topology, build_full_mesh
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.protocols.messages import ScrubRepair, WriteRequest, WriteToken
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


class TestDigestTree:
    def test_equal_sets_equal_roots_any_insertion_order(self):
        a, b = DigestTree(buckets=8), DigestTree(buckets=8)
        items = [(f"k{i}", i * 11) for i in range(20)]
        a.refresh(items)
        b.refresh(list(reversed(items)))
        assert a.root == b.root
        for level in (1, 2, 3):
            for index in range(1 << level):
                assert a.node(level, index) == b.node(level, index)

    def test_single_entry_change_is_incremental(self):
        tree = DigestTree(buckets=8)
        items = dict((f"k{i}", i) for i in range(50))
        tree.refresh(items.items())
        before = tree.refreshed_entries
        items["k7"] = 999
        changed = tree.refresh(items.items())
        assert changed == 1
        assert tree.refreshed_entries == before + 1

    def test_divergent_value_shows_in_exactly_one_bucket(self):
        a, b = DigestTree(buckets=16), DigestTree(buckets=16)
        items = dict((f"k{i}", i) for i in range(40))
        a.refresh(items.items())
        items["k3"] = -1
        b.refresh(items.items())
        assert a.root != b.root
        depth = 16 .bit_length() - 1
        divergent = [
            i for i in range(16) if a.node(depth, i) != b.node(depth, i)
        ]
        assert divergent == [a.bucket_of("k3")]

    def test_removal_restores_digest(self):
        tree = DigestTree(buckets=4)
        tree.refresh([("a", 1)])
        root_one = tree.root
        tree.refresh([("a", 1), ("b", 2)])
        tree.refresh([("a", 1)])
        assert tree.root == root_one
        assert len(tree) == 1

    def test_single_bucket_tree(self):
        tree = DigestTree(buckets=1)
        tree.refresh([("a", 1), ("b", 2)])
        assert tree.root == tree.node(0, 0)
        assert len(tree.bucket_entries(0)) == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DigestTree(buckets=12)


class TestLwwMergeTiebreak:
    """A corrupted replica holds a different value under the same
    version stamp; every replica must still converge to one winner."""

    def test_equal_version_conflict_resolves_to_larger_repr(self):
        stamp = Timestamp(1.0, 0, 0)
        a, b = LwwRegister(), LwwRegister()
        a.write(200, stamp)
        b.write(150, stamp)  # corrupt twin: same stamp, smaller repr
        assert not a.merge(150, stamp)  # smaller repr loses
        assert b.merge(200, stamp)
        assert a.value == b.value == 200

    def test_equal_version_equal_value_is_noop(self):
        stamp = Timestamp(1.0, 0, 0)
        reg = LwwRegister()
        reg.write(7, stamp)
        assert not reg.merge(7, stamp)


def build(seed, n=3, sync_period=1e-3, **kwargs):
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda name: PisaSwitch(name, sim), n)
    dep = SwiShmemDeployment(sim, topo, switches, sync_period=sync_period, **kwargs)
    return dep


class TestScrubRepair:
    def _seeded_sro(self, dep):
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(8):
            dep.manager("s0").register_write(spec, f"k{i}", 100 + i)
        dep.sim.run(until=5e-3)
        return spec

    def test_sro_corruption_detected_and_repaired(self):
        dep = build(seed=11)
        spec = self._seeded_sro(dep)
        scrubber = dep.start_scrubbing()
        FaultInjector(dep, seed=3).corrupt_register(6e-3, "s1", spec.group_id, key="k2")
        suite = InvariantSuite(dep).start(period=1e-3)
        dep.sim.run(until=0.05)
        report = suite.finalize()
        assert report.ok, report.summary()
        (event,) = dep.divergence_log
        assert event.kind == "corrupt" and event.key == "k2"
        assert event.detected and event.healed
        assert event.detected_at <= event.healed_at <= event.at + scrubber.heal_bound
        assert scrubber.stats.repairs_sent >= 1
        stores = list(dep.sro_stores(spec))
        assert stores[0] == stores[1] == stores[2]
        assert stores[0]["k2"] == 102  # the true value, not the corruption

    def test_corruption_without_scrubber_is_a_lost_write(self):
        """Corruption with no scrubber running: the divergence-healed
        monitor only arms once scrubbing starts, so the corruption is
        exactly a silently lost committed write at finalize."""
        dep = build(seed=11)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        suite = InvariantSuite(dep).start(period=1e-3)
        for i in range(8):
            dep.manager("s0").register_write(spec, f"k{i}", 100 + i)
        dep.sim.schedule_at(
            6e-3,
            lambda: FaultInjector(dep, seed=3)._corrupt_register(
                "s1", spec.group_id, "k2"
            ),
        )
        dep.sim.run(until=0.03)
        report = suite.finalize()
        assert not report.ok
        assert any(v.monitor == "no_lost_write" for v in report.violations)

    def test_ewo_counter_corruption_heals_through_forced_sync(self):
        # gossip effectively off: only the scrubber's forced syncs heal
        dep = build(seed=11, sync_period=10.0)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        for name in dep.switch_names:
            dep.manager(name).register_increment(spec, "c", 7)
        dep.sim.run(until=3e-3)
        for a in dep.switch_names:  # replicas agree before the fault
            for b in dep.switch_names:
                if a != b:
                    dep.manager(a).ewo.force_sync(spec.group_id, b)
        dep.sim.run(until=6e-3)
        scrubber = dep.start_scrubbing()
        FaultInjector(dep, seed=3).corrupt_register(7e-3, "s1", spec.group_id, key="c")
        suite = InvariantSuite(dep).start(period=1e-3)
        dep.sim.run(until=0.05)
        report = suite.finalize()
        assert report.ok, report.summary()
        (event,) = dep.divergence_log
        assert event.healed
        assert scrubber.stats.forced_syncs > 0
        values = [
            dep.manager(n).ewo.local_state(spec.group_id)["c"]
            for n in dep.switch_names
        ]
        assert values == [21, 21, 21]

    def test_lww_corruption_heals_and_converges(self):
        dep = build(seed=11, sync_period=10.0)
        spec = dep.declare(RegisterSpec("lww", Consistency.EWO, ewo_mode=EwoMode.LWW))
        dep.manager("s0").register_write(spec, "c", 42)
        dep.sim.run(until=3e-3)
        for a in dep.switch_names:
            for b in dep.switch_names:
                if a != b:
                    dep.manager(a).ewo.force_sync(spec.group_id, b)
        dep.sim.run(until=6e-3)
        dep.start_scrubbing()
        FaultInjector(dep, seed=3).corrupt_register(7e-3, "s1", spec.group_id, key="c")
        suite = InvariantSuite(dep).start(period=1e-3)
        dep.sim.run(until=0.05)
        report = suite.finalize()
        assert report.ok, report.summary()
        assert dep.divergence_log[0].healed
        values = {
            repr(dep.manager(n).ewo.local_state(spec.group_id)["c"])
            for n in dep.switch_names
        }
        assert len(values) == 1  # converged (tiebreak picks one winner)

    def test_equal_value_seq_hole_is_detected_and_unwedges_chain(self):
        # Regression: a frozen member that drops the apply of a
        # *same-value* rewrite ends up value-identical to the rest of
        # the chain but with a hole in its apply progress.  Value-only
        # digests scrub it clean, and the in-order apply check then
        # refuses every later seq — wedging the slot permanently.
        # Digesting (value, applied_seq) makes the hole visible so the
        # repair force-applies the missing seq.
        dep = build(seed=11)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        dep.manager("s0").register_write(spec, "k", 5)
        dep.sim.run(until=4e-3)
        dep.start_scrubbing()
        FaultInjector(dep, seed=3).stale_replica(
            5e-3, "s1", spec.group_id, duration=3e-3
        )
        # Rewrite the same value while s1 is frozen: s1 drops seq 2 but
        # forwards it, so the write commits and every store still reads 5.
        dep.sim.schedule_at(
            6e-3, lambda: dep.manager("s0").register_write(spec, "k", 5)
        )
        dep.sim.run(until=20e-3)
        state = dep.manager("s1").sro.groups[spec.group_id]
        slot = state.pending.slot_of("k")
        assert state.chaos_frozen_drops > 0
        assert state.pending.applied_seq(slot) == 2  # hole healed by scrub
        # The slot is not wedged: a later write flows through s1 in
        # order, commits, and lands on every member.
        dep.manager("s0").register_write(spec, "k", 7)
        dep.sim.run(until=30e-3)
        assert all(store["k"] == 7 for store in dep.sro_stores(spec))
        for name in dep.switch_names:
            member = dep.manager(name).sro.groups[spec.group_id]
            assert member.pending.applied_seq(slot) == 3

    def test_stale_replica_heals_after_thaw(self):
        dep = build(seed=11)
        spec = self._seeded_sro(dep)
        scrubber = dep.start_scrubbing()
        FaultInjector(dep, seed=3).stale_replica(
            6e-3, "s1", spec.group_id, duration=4e-3
        )
        counter = [0]

        def writes():
            counter[0] += 1
            dep.manager("s0").register_write(spec, f"k{counter[0] % 8}", counter[0])
            if dep.sim.now < 15e-3:
                dep.sim.schedule(400e-6, writes)

        dep.sim.schedule_at(6.5e-3, writes)
        suite = InvariantSuite(dep).start(period=1e-3)
        dep.sim.run(until=0.06)
        report = suite.finalize()
        assert report.ok, report.summary()
        (event,) = dep.divergence_log
        assert event.kind == "stale"
        assert event.at >= 10e-3  # heal clock starts at thaw
        assert event.healed
        deadline = event.deadline or event.at + scrubber.heal_bound
        assert event.healed_at <= deadline
        assert dep.manager("s1").sro.groups[spec.group_id].chaos_frozen_drops > 0
        stores = list(dep.sro_stores(spec))
        assert stores[0] == stores[1] == stores[2]

    def test_orset_corruption_is_rejected(self):
        dep = build(seed=11)
        spec = dep.declare(
            RegisterSpec("s", Consistency.EWO, ewo_mode=EwoMode.ORSET)
        )
        injector = FaultInjector(dep, seed=3)
        with pytest.raises(ValueError):
            injector._corrupt_register("s0", spec.group_id, None)

    def test_stale_repair_epoch_is_fenced(self):
        dep = build(seed=11)
        spec = self._seeded_sro(dep)
        agent = dep.manager("s1").scrub
        state = dep.manager("s1").sro.groups[spec.group_id]
        before = dict(state.store)
        repair = ScrubRepair(
            group=spec.group_id,
            key="k2",
            value=-1,
            seq=10_000,
            slot=0,
            source="s0",
            epoch=state.chain.version - 1,  # pre-failover epoch
        )
        agent.handle_repair(repair)
        assert state.store == before
        assert agent.repairs_fenced == 1

    def test_scrub_round_fences_on_reconfiguration(self):
        """A chain reconfiguration racing a scrub round aborts the round
        instead of repairing against a stale membership view."""
        dep = build(seed=11)
        spec = self._seeded_sro(dep)
        scrubber = dep.start_scrubbing()
        dep.sim.schedule(6.05e-3, lambda: dep.fail_switch("s2"))
        dep.sim.schedule(
            6.05e-3, lambda: dep.controller.note_failure_time("s2")
        )
        dep.sim.run(until=0.05)
        # scrubbing kept running with the surviving pair and stayed clean
        assert scrubber.stats.rounds_started > 5
        assert scrubber.stats.rounds_diverged == 0


class TestScrubDeterminism:
    def _chaos_run(self, seed, metrics=None, flightrec=None):
        kwargs = {}
        if metrics is not None:
            kwargs["metrics"] = metrics
        if flightrec is not None:
            kwargs["flight_recorder"] = flightrec
        dep = build(seed, n=4, **kwargs)
        sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        ctr = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        injector = FaultInjector(dep, seed=seed)
        injector.schedule_random(
            start=5e-3, horizon=30e-3,
            crashes=0, flaps=0, bursts=1, partitions=0,
            corruptions=2, stale_replicas=1,
            burst_loss=0.2, protect=["s0"],
        )
        dep.start_scrubbing()
        suite = InvariantSuite(dep).start(period=1e-3)
        counter = [0]

        def workload():
            i = counter[0]
            counter[0] += 1
            dep.manager("s0").register_write(sro, f"k{i % 8}", i)
            dep.manager(f"s{i % 3}").register_increment(ctr, "c", 1)
            if dep.sim.now < 40e-3:
                dep.sim.schedule(500e-6, workload)

        dep.sim.schedule(1e-3, workload)
        dep.sim.run(until=0.09)
        report = suite.finalize()
        digest = (
            injector.log_digest(),
            tuple(
                (e.kind, e.group, e.switch, round(e.at, 12))
                for e in dep.divergence_log
            ),
            tuple(sorted(store.items()) for store in dep.sro_stores(sro)),
            dep.sim.events_processed,
        )
        return report, digest, dep

    def test_chaos_with_scrubbing_ends_with_zero_divergence(self):
        report, _digest, dep = self._chaos_run(seed=9)
        assert report.ok, report.summary()
        assert len(dep.divergence_log) >= 3
        assert all(e.detected and e.healed for e in dep.divergence_log)
        assert not any(e.violated for e in dep.divergence_log)

    def test_identical_seeds_identical_digests(self):
        _r1, d1, _ = self._chaos_run(seed=14)
        _r2, d2, _ = self._chaos_run(seed=14)
        assert d1 == d2

    def test_instrumentation_is_digest_neutral(self):
        _r1, bare, _ = self._chaos_run(seed=14)
        _r2, instrumented, _ = self._chaos_run(
            seed=14, metrics=MetricsRegistry(), flightrec=FlightRecorder()
        )
        assert bare == instrumented


class TestRetryBackoffJitter:
    def _lossy_run(self, seed):
        dep = build(seed, sync_period=1e-3)
        for link in dep.topo.links:
            link.ab.loss_rate = link.ba.loss_rate = 0.3
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(12):
            dep.sim.schedule(
                i * 200e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_write(
                    spec, f"k{i}", i
                ),
            )
        dep.sim.run(until=2.0)
        retries = sum(
            dep.manager(n).sro.stats_for(spec.group_id).retries
            for n in dep.switch_names
        )
        return retries, dep.sim.events_processed, list(dep.sro_stores(spec))

    def test_jittered_retries_replay_byte_identically(self):
        r1 = self._lossy_run(seed=77)
        r2 = self._lossy_run(seed=77)
        assert r1 == r2
        assert r1[0] > 0  # retries (and thus jitter draws) actually happened

    def test_jitter_stream_untouched_without_retries(self):
        import random

        from repro.sim.random import derive_seed

        dep = build(seed=5)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=10e-3)
        engine = dep.manager("s0").sro
        pristine = random.Random(derive_seed(5, "sro-backoff:s0"))
        assert engine._backoff_rng.getstate() == pristine.getstate()


class TestDedupEviction:
    def _commit_one(self, dep, spec, key, value):
        dep.manager("s0").register_write(spec, key, value)
        dep.sim.run(until=dep.sim.now + 5e-3)

    def test_epoch_eviction_waits_for_retry_horizon(self):
        from repro.protocols.sro import RETRY_HORIZON

        dep = build(seed=5)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        self._commit_one(dep, spec, "k", 1)
        head = dep.chains[spec.group_id].head
        state = dep.manager(head).sro.groups[spec.group_id]
        assert len(state.dedup) == 1
        # two epochs later but inside the retry horizon: entry survives
        assert state.evict_dedup_epochs(state.chain.version + 2, dep.sim.now) == 0
        assert len(state.dedup) == 1
        # past the horizon: evicted
        evicted = state.evict_dedup_epochs(
            state.chain.version + 2, dep.sim.now + RETRY_HORIZON + 1.0
        )
        assert evicted == 1 and len(state.dedup) == 0
        assert state.dedup_evictions == 1

    def test_retry_of_evicted_committed_write_is_safe(self):
        """A duplicate of a committed-and-evicted plain write gets
        re-sequenced; the value is identical, so replicas stay correct
        and converged."""
        dep = build(seed=5)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        self._commit_one(dep, spec, "k", 7)
        head = dep.chains[spec.group_id].head
        engine = dep.manager(head).sro
        state = engine.groups[spec.group_id]
        (token,) = state.dedup
        state.dedup.clear()  # simulate epoch eviction after commit
        duplicate = WriteRequest(
            group=spec.group_id, key="k", value=7, token=token, attempt=1
        )
        engine._receive_write_request(duplicate)
        dep.sim.run(until=dep.sim.now + 5e-3)
        stores = list(dep.sro_stores(spec))
        assert stores[0] == stores[1] == stores[2] == {"k": 7}

    def test_fifo_capacity_bound_holds(self):
        dep = build(seed=5)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        head_name = dep.chains[spec.group_id].head
        state = dep.manager(head_name).sro.groups[spec.group_id]
        for i in range(state.dedup_capacity + 10):
            state.remember_token(
                WriteToken("w", i), seq=i, slot=0, value=i, now=0.0
            )
        assert len(state.dedup) == state.dedup_capacity
        assert state.dedup_evictions == 10


class TestOverlappingLossBursts:
    def test_overlapping_bursts_restore_true_base_rates(self):
        """Two bursts overlapping in time on links with a nonzero base
        loss rate: while both are live the max rate rules; when the
        longer one ends, every link returns to its true pre-burst rate —
        not to the first burst's rate, and not to zero."""
        dep = build(seed=5)
        for link in dep.topo.links:
            link.ab.loss_rate = link.ba.loss_rate = 0.02
        injector = FaultInjector(dep, seed=7)
        injector.loss_burst(1e-3, duration=6e-3, loss_rate=0.5)
        injector.loss_burst(2e-3, duration=2e-3, loss_rate=0.9)
        samples = {}

        def sample(label):
            samples[label] = [
                (link.ab.loss_rate, link.ba.loss_rate)
                for link in dep.topo.links
            ]

        dep.sim.schedule_at(3e-3, sample, "both")      # both bursts live
        dep.sim.schedule_at(5e-3, sample, "first")     # short burst over
        dep.sim.schedule_at(8e-3, sample, "restored")  # all over
        dep.sim.run(until=0.02)
        assert all(pair == (0.9, 0.9) for pair in samples["both"])
        assert all(pair == (0.5, 0.5) for pair in samples["first"])
        assert all(pair == (0.02, 0.02) for pair in samples["restored"])
        kinds = [r.kind for r in injector.log]
        assert kinds.count("loss-burst") == 2
        assert kinds.count("loss-burst-end") == 2

    def test_burst_bookkeeping_empties_after_restore(self):
        dep = build(seed=5)
        injector = FaultInjector(dep, seed=7)
        injector.loss_burst(1e-3, duration=2e-3, loss_rate=0.5)
        injector.loss_burst(1.5e-3, duration=2e-3, loss_rate=0.3)
        dep.sim.run(until=0.01)
        assert not injector._burst_base
        assert not injector._burst_active
        assert all(
            link.ab.loss_rate == 0.0 and link.ba.loss_rate == 0.0
            for link in dep.topo.links
        )
