"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import Process, SimulationError, Simulator, format_time


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advanced to the window edge
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_run_until_advances_clock_even_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_non_finite_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # must not raise

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestLazyDeletion:
    """The tuple-heap rewrite: cancelled entries are reclaimed lazily."""

    def test_heap_bounded_under_cancel_heavy_timer_workload(self):
        # SRO arms a retransmission timer per write and cancels it on the
        # ack.  Without compaction the heap would hold one dead timer per
        # step (peak ~n); the compactor must keep it bounded.
        sim = Simulator()
        n = 5_000
        pending = [None]

        def step(i):
            if pending[0] is not None:
                pending[0].cancel()
            pending[0] = sim.schedule(10.0, lambda: None, label="retx")
            if i + 1 < n:
                sim.schedule(1e-6, step, i + 1)

        sim.schedule(0.0, step, 0)
        sim.run(until=1.0)
        assert sim.events_cancelled == n - 1
        assert sim.compactions > 0
        assert sim.peak_queue_len < 300  # bounded, not O(n)
        # Heaps below the compaction floor may hold a few dead entries,
        # but never an O(n) backlog.
        assert sim.queue_len() < 64
        assert sim.pending() == 1

    def test_compaction_preserves_event_order(self):
        # Live entries keep their (time, seq) keys through compaction, so
        # firing order with interleaved cancels matches a run with the
        # cancelled events simply never scheduled.
        def run(with_cancels):
            sim = Simulator()
            order = []
            events = []
            for i in range(200):
                events.append(sim.schedule((i % 10) / 10.0, order.append, i))
            if with_cancels:
                for i, event in enumerate(events):
                    if i % 3 != 0:
                        event.cancel()  # 2/3 cancelled -> crosses the ~50% threshold
                assert sim.compactions > 0
            sim.run()
            return order

        kept = [i for i in range(200) if i % 3 == 0]
        expected = sorted(kept, key=lambda i: ((i % 10) / 10.0, i))
        assert run(with_cancels=True) == expected

    def test_pending_and_peek_with_interleaved_cancels(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        assert sim.pending() == 100
        # Cancel the front half interleaved with peeks: peek must always
        # report the earliest *live* event and pending() the live count.
        for i in range(50):
            events[i].cancel()
            assert sim.pending() == 100 - (i + 1)
            assert sim.peek_time() == float(i + 2)
        # Cancel from the back too; peek unaffected, pending shrinks.
        events[99].cancel()
        assert sim.pending() == 49
        assert sim.peek_time() == 51.0

    def test_peek_time_empty_and_all_cancelled(self):
        sim = Simulator()
        assert sim.peek_time() is None
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.peek_time() is None
        assert sim.pending() == 0

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        drop.cancel()  # second cancel must not skew the bookkeeping
        assert sim.events_cancelled == 1
        assert sim.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        live = sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()  # no-op: already fired, entry left the heap
        assert sim.pending() == 1
        assert sim.peek_time() == 2.0

    def test_process_stop_leaves_no_live_event(self):
        sim = Simulator()
        process = Process(sim, 1.0, lambda: None).start()
        sim.run(until=2.5)
        process.stop()
        assert process._event is None
        assert sim.pending() == 0  # the cancelled tick is not live
        assert sim.run(until=50.0) == 50.0
        assert process.ticks == 2

    def test_determinism_with_cancels_same_schedule_same_order(self):
        def run_once():
            sim = Simulator()
            order = []
            events = []
            for i in range(500):
                events.append(sim.schedule((i * 7919 % 13) / 10.0, order.append, i))
                if i % 5 == 2:
                    events[i // 2].cancel()
            sim.run()
            return order

        assert run_once() == run_once()


class TestStopAndStep:
    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []

        def stopper():
            fired.append("a")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_runs_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_stop_leaves_clock_at_stop_time_despite_until(self):
        # Documented boundary: run(until=...) advances the clock to the
        # window edge on a normal drain, but a stop() freezes the clock
        # at the last processed event — the history ends there.
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: None)
        assert sim.run(until=10.0) == 1.0
        assert sim.now == 1.0
        # Resuming the same simulator picks the history back up, and a
        # clean drain then does advance to the window edge.
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_reentrant_step_during_run_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_reentrant_run_during_step_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        assert sim.step() is True
        assert len(errors) == 1

    def test_step_skips_cancelled_and_updates_bookkeeping(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        first.cancel()
        assert sim.step() is True
        assert fired == [2]
        assert sim.pending() == 0

    def test_step_routes_through_profiler_like_run(self):
        class RecordingProfiler:
            def __init__(self):
                self.dispatched = []

            def dispatch(self, event):
                self.dispatched.append(event.label)
                event.callback(*event.args)

        sim = Simulator()
        profiler = RecordingProfiler()
        sim.profiler = profiler
        fired = []
        sim.schedule(1.0, fired.append, 1, label="stepped")
        assert sim.step() is True
        assert fired == [1]
        assert profiler.dispatched == ["stepped"]


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_after_overrides_first_delay(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now), start_after=0.25).start()
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        process = Process(sim, 1.0, lambda: None).start()
        sim.run(until=2.5)
        process.stop()
        before = process.ticks
        sim.run(until=10.0)
        assert process.ticks == before
        assert not process.alive

    def test_body_can_stop_itself(self):
        sim = Simulator()
        holder = {}

        def body():
            if holder["p"].ticks >= 3:
                holder["p"].stop()

        holder["p"] = Process(sim, 1.0, body).start()
        sim.run(until=100.0)
        assert holder["p"].ticks == 3

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, 0.0, lambda: None)

    def test_jitter_applied(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now), jitter=lambda: 0.5).start()
        sim.run(until=4.0)
        # first at 1.0 (start_after default = period), then +1.5 each
        assert ticks == pytest.approx([1.0, 2.5, 4.0])

    def test_double_start_is_noop(self):
        sim = Simulator()
        process = Process(sim, 1.0, lambda: None).start()
        assert process.start() is process
        sim.run(until=1.5)
        assert process.ticks == 1


def test_format_time():
    assert format_time(1e-6) == "1.000us"
    assert "," in format_time(1.0)  # thousands separator for big values


def test_determinism_same_schedule_same_order():
    def run_once():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i * 7919 % 13) / 10.0, order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()
