"""Seeded randomness for deterministic experiments.

All stochastic behavior in the reproduction — link loss, ECMP hashing
salt, workload inter-arrivals, Zipf draws, failure-injection times —
draws from named streams derived from a single experiment seed.  Named
streams keep components independent: adding a new consumer of randomness
does not perturb the draws seen by existing components, so experiment
results stay comparable across code revisions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

__all__ = ["SeededRng", "derive_seed"]

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from a root seed and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """A registry of independent named random streams.

    >>> rng = SeededRng(seed=42)
    >>> loss = rng.stream("link-loss")
    >>> workload = rng.stream("workload")

    Streams are created lazily and cached; asking for the same name twice
    returns the same :class:`random.Random` instance.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it deterministically if new."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    # Convenience helpers over an implicit "default" stream -------------
    def uniform(self, a: float, b: float, stream: str = "default") -> float:
        return self.stream(stream).uniform(a, b)

    def expovariate(self, rate: float, stream: str = "default") -> float:
        return self.stream(stream).expovariate(rate)

    def random(self, stream: str = "default") -> float:
        return self.stream(stream).random()

    def randint(self, a: int, b: int, stream: str = "default") -> int:
        return self.stream(stream).randint(a, b)

    def choice(self, seq: Sequence[T], stream: str = "default") -> T:
        return self.stream(stream).choice(seq)

    def sample(self, seq: Sequence[T], k: int, stream: str = "default") -> List[T]:
        return self.stream(stream).sample(seq, k)

    def shuffle(self, seq: list, stream: str = "default") -> None:
        self.stream(stream).shuffle(seq)

    def fork(self, name: str) -> "SeededRng":
        """Create an independent child registry (e.g. one per switch)."""
        return SeededRng(derive_seed(self.seed, f"fork:{name}"))
