"""Tests for tracing wired through the live network/switch stack."""

from __future__ import annotations

import pytest

from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.routing import RoutingTable
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.sim.trace import Tracer
from repro.switch.pisa import PisaSwitch


def traced_world(loss_rate=0.0, categories=None):
    sim = Simulator()
    tracer = Tracer(categories=categories)
    topo = Topology(sim, SeededRng(19), tracer=tracer)
    book = AddressBook()
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim, tracer=tracer), 3, loss_rate=loss_rate
    )
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", "s0")
    topo.connect("dst", "s2")
    routing = RoutingTable(topo)
    for switch in switches:
        switch.routing = routing
        switch.address_book = book
    return sim, tracer, src, dst, switches


class TestTracingIntegration:
    def test_forwarding_events_recorded(self):
        sim, tracer, src, dst, switches = traced_world()
        src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        tx_events = tracer.by_category("fwd")
        assert len(tx_events) >= 2  # s0 and s2 both transmitted
        assert {e.node for e in tx_events} >= {"s0", "s2"}
        assert all("to" in e.data for e in tx_events)

    def test_switch_drop_events_recorded(self):
        sim, tracer, src, dst, switches = traced_world()
        src.inject(make_udp_packet("10.0.0.1", "99.9.9.9", 1, 2))
        sim.run()
        drops = tracer.by_category("drop")
        assert len(drops) == 1
        assert drops[0].message == "unknown-ip"

    def test_link_loss_events_recorded(self):
        sim, tracer, src, dst, switches = traced_world(loss_rate=0.5)
        for _ in range(50):
            src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        link_drops = tracer.by_category("link")
        assert link_drops, "50% loss produced no link-drop trace events"
        assert all(e.message == "drop" for e in link_drops)

    def test_category_filter_suppresses_other_events(self):
        sim, tracer, src, dst, switches = traced_world(categories={"drop"})
        src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        src.inject(make_udp_packet("10.0.0.1", "99.9.9.9", 1, 2))
        sim.run()
        assert tracer.by_category("fwd") == []
        assert len(tracer.by_category("drop")) == 1

    def test_trace_timestamps_ordered(self):
        sim, tracer, src, dst, switches = traced_world()
        for i in range(5):
            sim.schedule(
                i * 1e-4,
                lambda: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)),
            )
        sim.run()
        times = [record.time for record in tracer]
        assert times == sorted(times)
