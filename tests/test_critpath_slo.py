"""Tests for critical-path latency attribution and live SLO monitoring.

Three properties carry the feature:

* **honesty** — per committed write, the attributed seconds telescope
  exactly to the end-to-end latency, so cause fractions sum to 1.0;
* **determinism** — the same seed produces byte-identical attribution
  reports and dashboard panels (no dict-order or RNG leakage);
* **digest neutrality** — attaching the SLO monitor (like the flight
  recorder before it) never perturbs the simulation.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import FaultInjector
from repro.core.registers import Consistency, RegisterSpec
from repro.obs.critpath import (
    CAUSES,
    CriticalPathAnalyzer,
    DEFAULT_PIPELINE_LATENCY,
)
from repro.obs.dashboard import render_critpath, render_slo
from repro.obs.flightrec import FlightRecorder
from repro.obs.slo import (
    NULL_SLO_MONITOR,
    NullSLOMonitor,
    SLOMonitor,
    parse_objective,
)
from repro.core.manager import SwiShmemDeployment
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PIPELINE_LATENCY, PisaSwitch


def _run_writes(
    recorder,
    n_writes: int = 20,
    loss_burst=None,
    leader_kill=None,
    slo_monitor=NULL_SLO_MONITOR,
    duration: float = 60e-3,
):
    """Drive a small SRO write workload, optionally through faults.

    Builds its own simulator (not the shared ``make_deployment``
    fixture) so one test can replay the same seeded scenario twice from
    a cold clock.
    """
    kwargs = {"flight_recorder": recorder, "slo_monitor": slo_monitor}
    if leader_kill is not None:
        kwargs["controller_replicas"] = 3
    sim = Simulator()
    topo = Topology(sim, SeededRng(1234))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    dep = SwiShmemDeployment(sim, topo, switches, **kwargs)
    spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=64))
    injector = FaultInjector(dep, seed=9)
    if loss_burst is not None:
        at, burst_duration, rate = loss_burst
        injector.loss_burst(at, duration=burst_duration, loss_rate=rate)
    if leader_kill is not None:
        # Repeated leader assassination: every replica that takes over
        # dies too, so the crashed chain hop stays unrepaired through
        # the accumulated leaderless windows.
        at, down_for = leader_kill
        injector.crash(at + 0.5e-3, "s1")
        for kill_at in (at, at + 12e-3, at + 25e-3):
            injector.crash_leader_for(kill_at, down_for=down_for)
        injector.recover(at + down_for, "s1")
    counter = [0]

    def workload():
        i = counter[0]
        counter[0] += 1
        dep.manager("s0").register_write(spec, f"k{i % 4}", i)
        if counter[0] < n_writes:
            dep.sim.schedule(500e-6, workload)

    dep.sim.schedule(1e-3, workload)
    dep.sim.run(until=duration)
    return dep, spec


class TestObjectiveGrammar:
    def test_parse_latency_objective(self):
        assert parse_objective("sro.write_commit p99 < 5ms over 100ms windows") == (
            "sro.write_commit", "p99", "<", 5e-3, 0.1
        )

    def test_parse_availability_objective(self):
        metric, stat, op, threshold, window = parse_objective(
            "sro.write availability >= 0.999 over 50ms windows"
        )
        assert (metric, stat, op) == ("sro.write", "availability", ">=")
        assert threshold == 0.999
        assert window == pytest.approx(0.05)

    def test_units_scale(self):
        assert parse_objective("m p50 <= 250us over 1s windows")[3] == 250e-6
        assert parse_objective("m max < 100ns over 1ms windows")[3] == pytest.approx(100e-9)

    @pytest.mark.parametrize(
        "bad",
        [
            "sro.write_commit p42 < 5ms over 100ms windows",  # unknown stat
            "sro.write_commit p99 ~ 5ms over 100ms windows",  # unknown op
            "sro.write_commit p99 < 5ms",  # no window clause
            "p99 < 5ms over 100ms windows",  # stat missing
            "m p99 < 5ms over 0ms windows",  # nonpositive window
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_objective(bad)


class TestSLOMonitor:
    def test_breach_and_burn_rate(self):
        monitor = SLOMonitor()
        monitor.add_objective("m p99 < 1ms over 10ms windows")
        # window 0: fast samples; window 1: slow; window 2 closes 1
        monitor.observe("m", 100e-6, 1e-3)
        monitor.observe("m", 5e-3, 12e-3)
        monitor.finalize(25e-3)
        state = monitor.as_dict()
        assert not state["ok"]
        assert state["objectives"][0]["windows_evaluated"] == 2
        assert state["objectives"][0]["windows_breached"] == 1
        assert state["objectives"][0]["burn_rate"] == 0.5
        [breach] = state["breaches"]
        assert breach["metric"] == "m"
        assert breach["window_start"] == pytest.approx(10e-3)
        assert breach["observed"] >= 1e-3

    def test_availability_objective(self):
        monitor = SLOMonitor()
        monitor.add_objective("w availability >= 0.9 over 10ms windows")
        for i in range(10):
            monitor.observe_event("w", ok=i != 0, now=1e-3 + i * 1e-4)
        for i in range(10):
            monitor.observe_event("w", ok=i >= 5, now=11e-3 + i * 1e-4)
        monitor.finalize(25e-3)
        state = monitor.as_dict()
        assert state["objectives"][0]["windows_evaluated"] == 2
        assert state["objectives"][0]["windows_breached"] == 1
        assert state["breaches"][0]["observed"] == pytest.approx(0.5)

    def test_empty_windows_neither_burn_nor_restore(self):
        monitor = SLOMonitor()
        monitor.add_objective("m p99 < 1ms over 1ms windows")
        monitor.observe("m", 10e-6, 0.5e-3)
        monitor.observe("m", 10e-6, 20.5e-3)  # 19 empty windows skipped
        monitor.finalize(30e-3)
        assert monitor.as_dict()["objectives"][0]["windows_evaluated"] == 2

    def test_worst_watermark_tracks_direction(self):
        monitor = SLOMonitor()
        objective = monitor.add_objective("m p99 < 1ms over 1ms windows")
        monitor.observe("m", 2e-3, 0.1e-3)
        monitor.observe("m", 9e-3, 1.1e-3)
        monitor.observe("m", 0.5e-3, 2.1e-3)
        monitor.finalize(5e-3)
        assert objective.worst_value >= 9e-3

    def test_breach_cap_drops_oldest(self):
        monitor = SLOMonitor()
        monitor.max_breaches = 2
        monitor.add_objective("m p99 < 1us over 1ms windows")
        for i in range(5):
            monitor.observe("m", 1.0, i * 1e-3 + 0.5e-3)
        monitor.finalize(10e-3)
        assert len(monitor.breaches) == 2
        assert monitor.breaches_dropped == 3
        assert not monitor.ok

    def test_null_monitor_is_inert_and_rejects_objectives(self):
        assert not NULL_SLO_MONITOR.enabled
        NULL_SLO_MONITOR.observe("m", 1.0, 0.0)
        NULL_SLO_MONITOR.observe_event("m", True, 0.0)
        NULL_SLO_MONITOR.finalize(1.0)
        assert NULL_SLO_MONITOR.samples == 0
        assert isinstance(NULL_SLO_MONITOR, NullSLOMonitor)
        with pytest.raises(RuntimeError):
            NULL_SLO_MONITOR.add_objective("m p99 < 1ms over 1ms windows")

    def test_deployment_feed_records_commits(self):
        monitor = SLOMonitor()
        monitor.add_objective("sro.write_commit p99 < 1s over 10ms windows")
        monitor.add_objective("sro.write availability >= 0.5 over 10ms windows")
        _run_writes(FlightRecorder(), slo_monitor=monitor)
        assert monitor.samples > 0
        state = monitor.as_dict()
        assert state["ok"]
        assert all(o["windows_evaluated"] > 0 for o in state["objectives"])


class TestCriticalPathAnalyzer:
    def test_pipeline_constant_matches_switch_model(self):
        assert DEFAULT_PIPELINE_LATENCY == PIPELINE_LATENCY

    def test_clean_run_attribution(self):
        recorder = FlightRecorder()
        _run_writes(recorder)
        report = CriticalPathAnalyzer(recorder).report()
        assert len(report.writes) == 20
        assert report.skipped == 0
        for write in report.writes:
            assert write.attempts == 1
            assert abs(write.fraction_sum - 1.0) <= 1e-9
            # no faults: no waiting causes at all
            assert write.by_cause["retry_backoff"] == 0.0
            assert write.by_cause["leaderless_window"] == 0.0
            assert write.by_cause["controller_fencing"] == 0.0
            assert write.by_cause["link_propagation"] > 0.0
            assert write.by_cause["switch_pipeline"] > 0.0

    def test_segments_telescope_exactly(self):
        recorder = FlightRecorder()
        _run_writes(recorder)
        report = CriticalPathAnalyzer(recorder).report()
        for write in report.writes:
            covered = sum(s.duration for s in write.segments)
            assert covered == pytest.approx(write.latency, abs=1e-15)

    def test_loss_burst_charges_retry_backoff(self):
        recorder = FlightRecorder()
        _run_writes(
            recorder, n_writes=30,
            loss_burst=(5e-3, 6e-3, 0.7), duration=80e-3,
        )
        report = CriticalPathAnalyzer(recorder).report(tail_quantile=0.9)
        retried = [w for w in report.writes if w.attempts > 1]
        assert retried, "burst induced no retries"
        assert report.top_tail_cause() == "retry_backoff"
        assert report.fraction_sum_error_max <= 1e-9

    def test_leader_kill_charges_leaderless_window(self):
        recorder = FlightRecorder()
        dep, _ = _run_writes(
            recorder, n_writes=30,
            leader_kill=(5e-3, 40e-3), duration=0.12,
        )
        leaderless = dep.controller.leaderless_intervals(dep.sim.now)
        assert leaderless
        report = CriticalPathAnalyzer(recorder, leaderless=leaderless).report(
            tail_quantile=0.9
        )
        assert report.top_tail_cause() == "leaderless_window"
        assert report.fraction_sum_error_max <= 1e-9
        # without the intervals, the same waits read as plain backoff
        blind = CriticalPathAnalyzer(recorder).report(tail_quantile=0.9)
        assert blind.top_tail_cause() == "retry_backoff"

    def test_same_seed_byte_identical_reports(self):
        def one_report():
            recorder = FlightRecorder()
            _run_writes(
                recorder, n_writes=30,
                loss_burst=(5e-3, 6e-3, 0.7), duration=80e-3,
            )
            return CriticalPathAnalyzer(recorder).report(tail_quantile=0.9)

        first, second = one_report(), one_report()
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )
        assert render_critpath(first.as_dict()) == render_critpath(second.as_dict())

    def test_truncated_chains_are_skipped_not_misattributed(self):
        recorder = FlightRecorder(max_records=64)  # evicts early spans
        _run_writes(recorder, n_writes=30)
        report = CriticalPathAnalyzer(recorder).report()
        assert report.skipped > 0
        for write in report.writes:
            assert abs(write.fraction_sum - 1.0) <= 1e-9

    def test_merge_hops_split_link_and_pipeline(self, make_deployment):
        from repro.core.registers import EwoMode

        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        ctr = dep.declare(RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        dep.sim.schedule(1e-3, lambda: dep.manager("s0").register_increment(ctr, "c", 1))
        dep.sim.run(until=10e-3)
        hops = CriticalPathAnalyzer(recorder).analyze_merges()
        remote = [h for h in hops if h.src_node != h.dst_node]
        assert remote
        for hop in remote:
            assert hop.by_cause["switch_pipeline"] == pytest.approx(
                DEFAULT_PIPELINE_LATENCY
            )
            assert hop.by_cause["link_propagation"] == pytest.approx(
                hop.latency - DEFAULT_PIPELINE_LATENCY
            )


class TestDashboardPanels:
    def _report_dict(self):
        recorder = FlightRecorder()
        _run_writes(recorder)
        return CriticalPathAnalyzer(recorder).report().as_dict()

    def test_critpath_panel_is_byte_stable(self):
        report = self._report_dict()
        text = render_critpath(report)
        assert text == render_critpath(json.loads(json.dumps(report)))
        assert "critical paths" in text
        for cause in CAUSES:
            assert cause in text

    def test_slo_panel_is_byte_stable(self):
        monitor = SLOMonitor()
        monitor.add_objective("m p99 < 1ms over 10ms windows")
        monitor.observe("m", 5e-3, 12e-3)
        monitor.finalize(25e-3)
        state = monitor.as_dict()
        text = render_slo(state)
        assert text == render_slo(json.loads(json.dumps(state)))
        assert "breach events" in text

    def test_empty_inputs_render_placeholders(self):
        assert "no committed writes" in render_critpath(
            {"writes_analyzed": 0, "writes_skipped": 0}
        )
        assert "no SLO objectives" in render_slo({"objectives": []})

    def test_render_dashboard_includes_new_panels(self):
        from repro.obs.dashboard import render_dashboard

        report = self._report_dict()
        monitor = SLOMonitor()
        monitor.add_objective("m p99 < 1ms over 10ms windows")
        monitor.finalize(1.0)
        text = render_dashboard(
            critpath_report=report, slo_state=monitor.as_dict()
        )
        assert "-- critical paths --" in text
        assert "-- slo --" in text
