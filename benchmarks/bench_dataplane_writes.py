"""[P6] Data-plane write buffering vs the control-plane path (section 9).

"One current limitation of SwiShmem is the need for control plane
involvement to achieve strongly consistent writes … A way to implement
buffering and retransmission in the data plane — perhaps achievable
with creative use of existing switch features — would enable this
support."  (Footnote 2 contrasts NetChain, whose *clients* retry —
infeasible when the switch itself is the client.)

This experiment realizes the open question with recirculation: the
output packet circles the pipeline until the chain ack arrives, and the
data plane retransmits unacked write requests itself.  Compared against
the paper's control-plane path:

* commit latency (the CPU hop disappears);
* write throughput at rates beyond the CPU ceiling (P5's limit);
* the new cost: recirculation passes consumed per write — pipeline
  slots instead of DRAM, the trade the paper hypothesized;
* robustness: commits under heavy request/ack loss via data-plane
  retransmission.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_rate, fmt_us, print_header, print_table

DURATION = 30e-3


@dataclass
class DpWriteResult:
    path: str
    offered_rate: float
    loss: float
    committed_rate: float
    mean_latency: float
    cpu_ops: int
    recirculations_per_write: float


def run_point(dataplane: bool, offered_rate: float, loss: float = 0.0, seed: int = 61) -> DpWriteResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3, loss_rate=loss)
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=10.0)
    spec = deployment.declare(
        RegisterSpec(
            "reg", Consistency.SRO, capacity=64, dataplane_write_buffering=dataplane
        )
    )
    writer = deployment.manager("s0")
    count = int(offered_rate * DURATION)
    for i in range(count):
        sim.schedule(
            i / offered_rate,
            lambda i=i: writer.register_write(spec, f"k{i % 16}", i),
        )
    settle = 1.0 if loss else 5e-3
    sim.run(until=DURATION + settle)
    stats = writer.sro.stats_for(spec.group_id)
    return DpWriteResult(
        path="data-plane (recirc)" if dataplane else "control-plane",
        offered_rate=offered_rate,
        loss=loss,
        committed_rate=stats.writes_committed / DURATION,
        mean_latency=stats.mean_write_latency,
        cpu_ops=writer.switch.control.ops_executed,
        recirculations_per_write=(
            writer.sro.dp_recirculations / max(1, stats.writes_committed)
        ),
    )


def run_experiment() -> List[DpWriteResult]:
    return [
        run_point(False, 10_000),
        run_point(True, 10_000),
        run_point(False, 120_000),  # beyond the 50K/s CPU ceiling
        run_point(True, 120_000),
        run_point(True, 10_000, loss=0.3),
    ]


def report(results: List[DpWriteResult]) -> None:
    print_header(
        "P6",
        "Section 9 realized: data-plane write buffering via recirculation",
        "buffering + retransmission in the data plane removes the "
        "control-plane ceiling, paying in recirculation (pipeline) slots",
    )
    print_table(
        ["write path", "offered", "loss", "committed", "mean latency",
         "cpu ops", "recirc/write"],
        [
            (
                r.path,
                fmt_rate(r.offered_rate),
                f"{r.loss * 100:.0f}%",
                fmt_rate(r.committed_rate),
                fmt_us(r.mean_latency),
                r.cpu_ops,
                f"{r.recirculations_per_write:.1f}",
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_dataplane_writes_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    cp_low, dp_low, cp_high, dp_high, dp_lossy = results
    # data-plane commits are faster (no CPU hop) and use zero CPU ops
    assert dp_low.mean_latency < cp_low.mean_latency
    assert dp_low.cpu_ops == 0 and cp_low.cpu_ops > 0
    # beyond the CPU ceiling: the control-plane path saturates (~50K/s),
    # the data-plane path keeps up with the offered load
    assert cp_high.committed_rate < 60_000
    assert dp_high.committed_rate > 110_000
    # the price: recirculation slots proportional to commit latency
    assert dp_low.recirculations_per_write > 5
    # and it stays correct under heavy loss via data-plane retransmission
    assert dp_lossy.committed_rate == pytest.approx(10_000, rel=0.05)


@pytest.mark.benchmark(group="sro")
def test_benchmark_dataplane_write(benchmark):
    benchmark.pedantic(lambda: run_point(True, 10_000), rounds=1, iterations=1)
