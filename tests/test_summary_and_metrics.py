"""Tests for the deployment summary API and the stale-read metric."""

from __future__ import annotations

import pytest

from repro.analysis.history import HistoryRecorder
from repro.analysis.metrics import count_stale_reads
from repro.core.registers import Consistency, EwoMode, RegisterSpec


class TestCountStaleReads:
    def _history(self, reads):
        recorder = HistoryRecorder()
        for time, value in reads:
            recorder.record_instant("read", 1, "k", value, "s0", time)
        return recorder

    def test_monotone_reads_not_stale(self):
        recorder = self._history([(1.0, 1), (2.0, 2), (3.0, 3)])
        assert count_stale_reads(recorder) == 0

    def test_regression_counted(self):
        recorder = self._history([(1.0, 5), (2.0, 3), (3.0, 5)])
        assert count_stale_reads(recorder) == 1

    def test_none_values_ignored(self):
        recorder = self._history([(1.0, None), (2.0, 1), (3.0, None)])
        assert count_stale_reads(recorder) == 0

    def test_keys_tracked_independently(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "a", 5, "s0", 1.0)
        recorder.record_instant("read", 1, "b", 1, "s0", 2.0)  # different key
        assert count_stale_reads(recorder) == 0

    def test_writes_ignored(self):
        recorder = HistoryRecorder()
        recorder.record_instant("write", 1, "k", 9, "s0", 1.0)
        recorder.record_instant("read", 1, "k", 1, "s0", 2.0)
        assert count_stale_reads(recorder) == 0

    def test_group_and_key_filters(self):
        recorder = HistoryRecorder()
        recorder.record_instant("read", 1, "k", 5, "s0", 1.0)
        recorder.record_instant("read", 1, "k", 3, "s0", 2.0)
        recorder.record_instant("read", 2, "k", 5, "s0", 3.0)
        recorder.record_instant("read", 2, "k", 3, "s0", 4.0)
        assert count_stale_reads(recorder) == 2
        assert count_stale_reads(recorder, group=1) == 1
        assert count_stale_reads(recorder, group=2, key="k") == 1


class TestDeploymentSummary:
    def test_summary_structure(self, deployment):
        sro = deployment.declare(RegisterSpec("table", Consistency.SRO))
        ewo = deployment.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        deployment.manager("s0").register_write(sro, "k", "v")
        deployment.manager("s1").register_increment(ewo, "k", 2)
        deployment.sim.run(until=0.05)
        summary = deployment.summary()

        assert set(summary["switches"]) == {"s0", "s1", "s2"}
        s0 = summary["switches"]["s0"]
        assert s0["failed"] is False
        assert s0["memory_used_bytes"] > 0
        assert 0 < s0["memory_utilization"] < 1
        assert s0["cpu_ops"] > 0  # the SRO write punted

        assert set(summary["groups"]) == {"table", "ctr"}
        table = summary["groups"]["table"]
        assert table["consistency"] == "sro"
        assert table["totals"]["writes_committed"] == 1
        ctr = summary["groups"]["ctr"]
        assert ctr["totals"]["local_writes"] == 1
        assert ctr["totals"]["merges_applied"] >= 2

        assert summary["failures"] == 0
        assert summary["replication_bytes_on_wire"] > 0

    def test_summary_reflects_failures(self, deployment):
        deployment.declare(RegisterSpec("r", Consistency.SRO))
        deployment.controller.note_failure_time("s1")
        deployment.fail_switch("s1")
        deployment.sim.run(until=0.01)
        summary = deployment.summary()
        assert summary["switches"]["s1"]["failed"] is True
        assert summary["failures"] == 1

    def test_summary_json_serializable(self, deployment):
        import json

        deployment.declare(RegisterSpec("r", Consistency.SRO))
        deployment.sim.run(until=0.01)
        text = json.dumps(deployment.summary())
        assert "switches" in text
