"""SwiShmem register abstractions — the paper's user-facing API.

Paper section 5: "SwiShmem provides the abstraction of shared registers
to programmable switches … SwiShmem supports three types of registers
which have different semantics and are accessed through different
protocols":

* **SRO** (Strong Read Optimized) — linearizable; local reads when no
  write is in flight, tail reads otherwise; writes via chain replication
  through the control plane.
* **ERO** (Eventual Read Optimized) — SRO's write path, but reads are
  always local: bounded read latency, no pending bits, eventual
  consistency during write propagation.
* **EWO** (Eventual Write Optimized) — local reads and writes, with
  asynchronous broadcast plus periodic synchronization; last-writer-wins
  or CRDT-counter merge semantics.

A :class:`RegisterSpec` declares a register *group* (a keyed collection
sharing one protocol configuration — the unit the deployment replicates).
NF code receives :class:`RegisterHandle` objects bound to the local
switch and calls :meth:`~RegisterHandle.read`,
:meth:`~RegisterHandle.write`, or :meth:`~RegisterHandle.increment`
without knowing which switch it runs on — the "one big switch" facade.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemManager

__all__ = [
    "Consistency",
    "DigestTree",
    "EwoMode",
    "FetchAdd",
    "RegisterSpec",
    "RegisterHandle",
    "ReadForwarded",
    "WriteError",
]


class Consistency(enum.Enum):
    """The three register types of paper section 5."""

    SRO = "sro"
    ERO = "ero"
    EWO = "ewo"


class EwoMode(enum.Enum):
    """Merge semantics for EWO groups (paper section 6.2)."""

    #: Last-writer-wins: timestamp + switch-id tiebreak.
    LWW = "lww"
    #: CRDT counter: per-switch slot vector, element-wise max merge.
    COUNTER = "counter"
    #: Observed-remove set — the paper's open question ("whether [set
    #: CRDTs] are useful for in-switch NF applications or implementable
    #: in a switch data plane"), made concrete: per-key OR-Sets with
    #: delta replication and explicit footprint accounting.
    ORSET = "orset"


@dataclass(frozen=True)
class FetchAdd:
    """Marker value for a linearizable read-modify-write on SRO state.

    Appearing as the value in a write set, it tells the chain head to
    compute ``current + amount`` at sequencing time — the primitive an
    in-network sequencer needs (paper section 9).  The committed value
    returns on the ack and is handed to the packet's ``on_release``
    hook.
    """

    amount: int = 1


class ReadForwarded(Exception):
    """A read hit a pending slot; the packet was forwarded to the tail.

    NF handlers let this propagate: the SwiShmem manager catches it and
    terminates local processing (the tail re-executes the NF against the
    latest committed state — paper section 6.1's read path).
    """

    def __init__(self, group: int, key: Any, tail: str) -> None:
        super().__init__(f"read of group {group} key {key!r} forwarded to tail {tail}")
        self.group = group
        self.key = key
        self.tail = tail


class WriteError(RuntimeError):
    """A write could not be initiated (e.g. no chain configured)."""


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class DigestTree:
    """Incremental Merkle-style digest over one replica's register set.

    The anti-entropy scrubber (``repro.protocols.antientropy``) compares
    these trees across chain/group members to locate silently diverged
    registers without shipping full state:

    * Keys hash into one of ``buckets`` leaf buckets
      (:meth:`bucket_of`, stable across replicas).  A bucket's digest is
      the XOR of its entries' 64-bit hashes — order-independent, so two
      replicas holding the same set of (key, value) pairs produce the
      same digest regardless of insertion order, and an entry change
      updates the bucket in O(1) (XOR out the old hash, XOR in the new).
    * Internal nodes hash their two children, up to a single root.
      Comparing roots answers "identical?"; walking divergent nodes
      downward (:meth:`node`) bisects to the buckets, and
      :meth:`bucket_entries` yields per-key hashes for the final step.

    :meth:`refresh` diffs the live store against the cached entries, so
    the steady-state cost per scrub round is proportional to the number
    of *changed* keys, not the store size.  Values handed to ``refresh``
    must be immutable canonical forms (tuples, not live lists): the
    change check compares cached values by equality, which aliasing
    would defeat.
    """

    __slots__ = ("buckets", "depth", "_entries", "_tree", "_dirty", "refreshed_entries")

    def __init__(self, buckets: int = 16) -> None:
        if buckets < 1 or buckets & (buckets - 1):
            raise ValueError(f"buckets must be a power of two, got {buckets}")
        self.buckets = buckets
        #: Tree depth: level 0 is the root, level ``depth`` the buckets.
        self.depth = buckets.bit_length() - 1
        #: key -> (canonical value, entry hash)
        self._entries: Dict[Any, Tuple[Any, int]] = {}
        #: Implicit heap: _tree[1] is the root, buckets live at
        #: [buckets, 2*buckets).  Bucket digests are XOR accumulators.
        self._tree: List[int] = [0] * (2 * self.buckets)
        # Internal nodes must equal hash(children) from the start, not
        # lazily on first dirtying: otherwise two trees holding the same
        # entries can disagree purely on which sibling subtrees were
        # ever touched (e.g. after an add-then-remove), which a digest
        # comparison would misread as divergence.
        for index in range(self.buckets - 1, 0, -1):
            left, right = self._tree[2 * index], self._tree[2 * index + 1]
            self._tree[index] = _hash64(
                left.to_bytes(8, "big") + right.to_bytes(8, "big")
            )
        self._dirty: Set[int] = set()
        #: Total entries re-hashed across all refreshes (incrementality
        #: is observable: unchanged stores add zero).
        self.refreshed_entries = 0

    @staticmethod
    def entry_hash(key: Any, value: Any) -> int:
        return _hash64(repr((key, value)).encode())

    def bucket_of(self, key: Any) -> int:
        """Stable bucket index for ``key`` (identical on every replica)."""
        return _hash64(repr(key).encode()) % self.buckets

    # ------------------------------------------------------------------
    def refresh(self, items: Iterable[Tuple[Any, Any]]) -> int:
        """Bring the tree up to date with ``items``; returns changed keys."""
        changed = 0
        seen: Set[Any] = set()
        for key, value in items:
            seen.add(key)
            cached = self._entries.get(key)
            if cached is not None and cached[0] == value:
                continue
            h = self.entry_hash(key, value)
            bucket = self.bucket_of(key)
            slot = self.buckets + bucket
            if cached is not None:
                self._tree[slot] ^= cached[1]
            self._tree[slot] ^= h
            self._entries[key] = (value, h)
            self._dirty.add(bucket)
            changed += 1
        if len(seen) != len(self._entries):
            for key in [k for k in self._entries if k not in seen]:
                _, h = self._entries.pop(key)
                bucket = self.bucket_of(key)
                self._tree[self.buckets + bucket] ^= h
                self._dirty.add(bucket)
                changed += 1
        if self._dirty:
            parents = {
                i for i in ((self.buckets + b) >> 1 for b in self._dirty) if i >= 1
            }
            self._dirty.clear()
            while parents:
                for index in parents:
                    left, right = self._tree[2 * index], self._tree[2 * index + 1]
                    self._tree[index] = _hash64(
                        left.to_bytes(8, "big") + right.to_bytes(8, "big")
                    )
                parents = {i >> 1 for i in parents if i > 1}
        self.refreshed_entries += changed
        return changed

    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return self._tree[1]

    def node(self, level: int, index: int) -> int:
        """Digest of node ``index`` at ``level`` (0 = root, depth = buckets)."""
        if not 0 <= level <= self.depth:
            raise ValueError(f"level must be in [0, {self.depth}], got {level}")
        width = 1 << level
        if not 0 <= index < width:
            raise ValueError(f"index must be in [0, {width}), got {index}")
        return self._tree[width + index]

    def bucket_entries(self, bucket: int) -> List[Tuple[Any, int]]:
        """(key, entry hash) pairs currently hashed into ``bucket``."""
        return sorted(
            (
                (key, h)
                for key, (_, h) in self._entries.items()
                if self.bucket_of(key) == bucket
            ),
            key=lambda pair: repr(pair[0]),
        )

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class RegisterSpec:
    """Declaration of one shared register group.

    ``capacity`` bounds the number of live keys, and together with
    ``key_bytes``/``value_bytes`` determines the data-plane memory
    charged on every replica.  ``pending_slots`` sizes the SRO pending
    table (ignored for ERO/EWO); fewer slots than keys means shared
    pending bits (paper section 7, experiment A1).

    ``control_plane_state`` marks groups whose backing store is a P4
    *table* rather than a register: chain updates then pass through each
    member's control plane (paper section 6.1, "Otherwise, the update
    protocol is processed by the control-plane of each switch in the
    chain") — slower, but exactly what NAT/firewall/LB connection tables
    already require.
    """

    name: str
    consistency: Consistency
    capacity: int = 1024
    key_bytes: int = 8
    value_bytes: int = 8
    default: Any = None
    # SRO/ERO:
    pending_slots: Optional[int] = None
    control_plane_state: bool = False
    #: Section 9 open question, answered experimentally: buffer the
    #: output packet *in the data plane* by recirculating it until the
    #: chain ack arrives (retransmitting the write request from the data
    #:  plane after a recirculation budget), instead of parking it in
    #: control-plane DRAM.  Trades pipeline slots for CPU independence —
    #: the NetChain-style contrast of footnote 2.  Incompatible with
    #: ``control_plane_state`` (tables need the CPU anyway).
    dataplane_write_buffering: bool = False
    # EWO:
    ewo_mode: EwoMode = EwoMode.LWW
    #: Broadcast after this many local writes (1 = every write; paper
    #: section 7's batching knob, experiment A2).
    ewo_batch_size: int = 1
    #: Section 9 extension: consult the deployment's directory service
    #: for per-key replica sets instead of broadcasting to the whole
    #: group.  Requires ``SwiShmemDeployment.attach_directory``.
    partial_replication: bool = False
    #: group id, assigned by the deployment at registration time.
    group_id: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"register group {self.name!r}: capacity must be positive")
        if self.key_bytes <= 0 or self.value_bytes <= 0:
            raise ValueError(f"register group {self.name!r}: widths must be positive")
        if self.pending_slots is not None and self.pending_slots <= 0:
            raise ValueError(f"register group {self.name!r}: pending_slots must be positive")
        if self.ewo_batch_size <= 0:
            raise ValueError(f"register group {self.name!r}: batch size must be positive")
        if self.dataplane_write_buffering and self.control_plane_state:
            raise ValueError(
                f"register group {self.name!r}: data-plane write buffering is "
                "incompatible with control-plane table state"
            )

    @property
    def is_strong(self) -> bool:
        return self.consistency is Consistency.SRO

    def effective_pending_slots(self) -> int:
        """Default: one slot per key (no sharing)."""
        return self.pending_slots if self.pending_slots is not None else self.capacity


class RegisterHandle:
    """Per-switch handle to a register group.

    All methods must be called from inside a pipeline pass (an NF
    handler); the manager supplies the packet context implicitly.
    """

    def __init__(self, spec: RegisterSpec, manager: "SwiShmemManager") -> None:
        self.spec = spec
        self._manager = manager

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def consistency(self) -> Consistency:
        return self.spec.consistency

    def read(self, key: Any, default: Any = None) -> Any:
        """Read the register for ``key``.

        SRO: raises :class:`ReadForwarded` when a write to the key's
        slot is in flight and this switch is not the tail.  ERO/EWO:
        always local, never raises.
        """
        return self._manager.register_read(self.spec, key, default)

    def write(self, key: Any, value: Any) -> None:
        """Write the register for ``key``.

        SRO/ERO: the write joins the current packet's write set; the
        output packet is buffered by the control plane until the chain
        acks (SRO semantics for externalizing output).  EWO: applied
        locally at once and broadcast asynchronously.
        """
        self._manager.register_write(self.spec, key, value)

    def increment(self, key: Any, amount: int = 1) -> int:
        """Counter increment (EWO counter mode); returns the new global value."""
        return self._manager.register_increment(self.spec, key, amount)

    def fetch_add(self, key: Any, amount: int = 1) -> None:
        """Linearizable fetch-add on an SRO register (section 9 sequencer).

        Must be called from an NF packet handler; the assigned value is
        delivered to the context's ``on_release`` hook when the chain
        commits (the data plane cannot block for it).
        """
        self._manager.register_fetch_add(self.spec, key, amount)

    def add(self, key: Any, element: Any) -> None:
        """Add an element to an OR-Set register (EWO ORSET mode)."""
        self._manager.register_set_add(self.spec, key, element)

    def discard(self, key: Any, element: Any) -> bool:
        """Remove an element from an OR-Set register (observed-remove)."""
        return self._manager.register_set_remove(self.spec, key, element)

    def contains(self, key: Any, element: Any) -> bool:
        """Membership test on an OR-Set register (local, per-packet cheap)."""
        return self._manager.register_set_contains(self.spec, key, element)

    def peek(self, key: Any, default: Any = None) -> Any:
        """Control-plane read of the local replica, bypassing the protocol.

        Used by periodic control loops (e.g. the rate limiter's window
        scan) and by tests; never forwards, never blocks.
        """
        return self._manager.register_peek(self.spec, key, default)

    def __repr__(self) -> str:
        return f"<RegisterHandle {self.spec.name} {self.spec.consistency.value}>"
