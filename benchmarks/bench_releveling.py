"""[T4] Runtime re-leveling: advisor-driven SRO -> EWO demotion, live.

T2 ends where its advisor flags a per-source meter *misdeclared* as SRO
(write-per-packet through the replication chain — Observation 2's
worst case).  This experiment closes the actuation loop: the
:class:`~repro.protocols.releveling.RelevelingCoordinator` takes that
high-confidence recommendation and demotes the group to EWO on the
live deployment with a drain -> switch -> unfence handoff — under
chaos (a :class:`~repro.chaos.nemesis.LeaderKiller` crashes the
controller leader mid-drain, and a packet nemesis duplicates/delays
SwiShmem traffic throughout) — and the run must show:

* **zero committed-write loss** — every post-demotion EWO replica holds
  exactly the drained chain's committed state (linearizable history
  intact up to the fence epoch; the seed carries one controller-issued
  timestamp so replicas land byte-identical);
* **takeover resume** — the successor leader resumes the in-flight
  handoff from coordinator state, no rollback;
* **write-latency improvement** — per-packet NF latency collapses once
  per-packet writes stop crossing the chain (the quantitative claim the
  Table 1 demotion advice exists to deliver);
* **determinism** — the whole run, leader kill and all, replays
  byte-identically from its seed.

Run standalone::

    python benchmarks/bench_releveling.py [--quick]
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.chaos import LeaderKiller, Nemesis
from repro.core.registers import Consistency
from repro.obs import AccessProfiler, ConsistencyAdvisor

from benchmarks.bench_access_advisor import MeterSroNF
from benchmarks.common import emit_json, fmt_us, print_header, print_table
from tests.nfworld import build_nf_world

SEED = 2400


def _drive(world, flows: int, gap: float = 100e-6, phase: str = "a") -> None:
    """Zipf-skewed TCP drive (T2's recipe), relative to the current sim
    time so it works mid-run — phase B starts after the handoff."""
    from repro.workload.flows import FlowSpec, inject_flow
    from repro.workload.zipf import ZipfSampler

    rng = world.rng.stream(f"zipf-flows-{phase}")
    destinations = world.server_ips()
    client_picker = ZipfSampler(len(world.clients), s=1.2, rng=rng)
    dst_picker = ZipfSampler(len(destinations), s=1.2, rng=rng)
    at = world.sim.now
    port = 31000 if phase == "a" else 33000
    for _ in range(flows):
        at += rng.expovariate(4000.0)
        port += 1
        inject_flow(
            world.sim,
            FlowSpec(
                client=client_picker.pick(world.clients),
                dst_ip=dst_picker.pick(destinations),
                src_port=port,
                data_packets=6,
                inter_packet_gap=gap,
                start_at=at,
            ),
        )
    world.sim.run(until=at + 0.1)


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------

def _latency_stats(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    n = len(ordered)

    def pct(p: float) -> float:
        return ordered[min(n - 1, int(p * n))]

    return {
        "packets": n,
        "mean_us": sum(ordered) / n * 1e6,
        "p50_us": pct(0.50) * 1e6,
        "p99_us": pct(0.99) * 1e6,
        "max_us": ordered[-1] * 1e6,
    }


def _collect_latencies(world, skip: Dict[str, int]) -> List[float]:
    """Per-packet end-to-end latency of every data packet the servers
    received since ``skip`` was captured (injection to delivery — the
    NF-visible cost, write barrier included)."""
    samples = []
    for host in world.servers:
        for rec in host.received[skip.get(host.name, 0) :]:
            if rec.packet.created_at is not None:
                samples.append(rec.time - rec.packet.created_at)
    return samples


def _receive_marks(world) -> Dict[str, int]:
    return {host.name: len(host.received) for host in world.servers}


def _run_digest(world, spec) -> str:
    """Event-history digest: kernel events, host injections, and every
    replica's meter state (engine-agnostic)."""
    dep = world.deployment
    if spec.consistency is Consistency.EWO:
        replicas = dep.ewo_states(spec)
    else:
        replicas = dep.sro_stores(spec)
    history = (
        world.sim.events_processed,
        tuple(h.sent_count for h in world.clients + world.servers),
        tuple(
            tuple(sorted(replica.items(), key=lambda kv: repr(kv[0])))
            for replica in replicas
        ),
    )
    return hashlib.sha256(repr(history).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------

@dataclass
class RelevelingResult:
    advice: Dict[str, Any]
    pre: Dict[str, float]                # SRO-phase per-packet latency
    post: Dict[str, float]               # EWO-phase per-packet latency
    write_latency_improvement: float     # pre.mean / post.mean
    handoff: Dict[str, Any]              # duration, phases, chaos counters
    loss: Dict[str, Any]                 # committed-write accounting
    determinism: Dict[str, Any]          # same-seed replay digests
    stats: Dict[str, int] = field(default_factory=dict)


def _settle(world, dep, spec, budget: float = 2.0) -> float:
    """Run until the overloaded chain has committed its write backlog
    (every member quiesced).  The backlog itself is part of the story:
    a write-per-packet meter drives the chain far past its serialized
    commit capacity — Observation 2's argument for demotion."""
    start = world.sim.now
    deadline = start + budget
    while world.sim.now < deadline:
        if all(
            manager.sro.quiesced(spec.group_id)
            for manager in dep.managers.values()
            if not manager.switch.failed
        ):
            break
        world.sim.run(until=world.sim.now + 0.05)
    return world.sim.now - start


def _run_once(flows: int) -> Dict[str, Any]:
    profiler = AccessProfiler()
    world = build_nf_world(
        seed=SEED,
        responder_servers=False,
        access_profiler=profiler,
        controller_replicas=2,
    )
    dep = world.deployment
    dep.install_nf(MeterSroNF)
    spec = dep.spec_by_name("meter_usage")

    # Chaos throughout: SwiShmem packets duplicated and delayed, and the
    # controller leader is killed the moment the handoff starts draining.
    Nemesis(
        seed=SEED + 1, duplicate_prob=0.05, delay_prob=0.05, max_delay=50e-6
    ).install(world.topo)
    killer = LeaderKiller(dep, phase="drain", kills=1)

    # Phase A: the misdeclared meter pays the chain on every packet.
    pre_marks = _receive_marks(world)
    _drive(world, flows=flows, phase="a")
    pre_latencies = _collect_latencies(world, pre_marks)
    packets = sum(h.sent_count for h in world.clients + world.servers)
    backlog_seconds = _settle(world, dep, spec)

    # The advisor flags it; the coordinator acts on the advice — with
    # fresh traffic still flowing through the handoff (new writes are
    # fenced into overlays and replayed on unfence).
    advisor = ConsistencyAdvisor(profiler, packets=packets)
    advice = advisor.advice_for("meter_usage").as_dict()
    seed_seen: Dict[str, Any] = {}

    def capture_seed(phase, handoff):
        if phase == "switch":
            seed_seen["seed"] = dict(handoff.switch_payload["seed"])

    dep.releveler.phase_listeners.append(capture_seed)
    handoff_started = world.sim.now
    acted = dep.releveler.apply_advice(advisor)
    _drive(world, flows=max(4, flows // 4), phase="mid")
    world.sim.run(until=world.sim.now + 0.3)
    handoff_log = list(dep.releveler.log)

    # Zero committed-write loss: the switch seeded every replica with
    # the drained chain's committed state, and the meter only ever
    # increments — any replica value *below* its seeded value means a
    # committed write vanished.
    committed = seed_seen.get("seed", {})
    replicas = [dict(r) for r in dep.ewo_states(spec)]
    lost = sum(
        1
        for replica in replicas
        for key, value in committed.items()
        if replica.get(key, 0) < value
    )

    # Phase B: same drive, writes now applied locally and gossiped.
    post_marks = _receive_marks(world)
    _drive(world, flows=flows, phase="b")
    post_latencies = _collect_latencies(world, post_marks)

    return {
        "advice": advice,
        "acted": acted,
        "pre_latencies": pre_latencies,
        "post_latencies": post_latencies,
        "backlog_seconds": backlog_seconds,
        "committed": committed,
        "replicas": replicas,
        "lost": lost,
        "handoff_started": handoff_started,
        "handoff_log": handoff_log,
        "killer_log": list(killer.log),
        "releveler_stats": dep.releveler.stats.as_dict(),
        "final_level": spec.consistency.value,
        "digest": _run_digest(world, spec),
    }


def run_experiment(quick: bool = False) -> RelevelingResult:
    flows = 15 if quick else 30
    run = _run_once(flows)
    replay = _run_once(flows)

    pre = _latency_stats(run["pre_latencies"])
    post = _latency_stats(run["post_latencies"])
    duration = run["handoff_log"][0][3] if run["handoff_log"] else float("inf")
    return RelevelingResult(
        advice=run["advice"],
        pre=pre,
        post=post,
        write_latency_improvement=pre["mean_us"] / post["mean_us"],
        handoff={
            "completed": run["releveler_stats"]["completed"],
            "duration_seconds": duration,
            "backlog_seconds": run["backlog_seconds"],
            "leader_kills": len(run["killer_log"]),
            "resumed": run["releveler_stats"]["resumed"],
            "rollbacks": run["releveler_stats"]["rollbacks"],
            "final_level": run["final_level"],
        },
        loss={
            "committed_keys": len(run["committed"]),
            "replicas": len(run["replicas"]),
            "committed_writes_lost": run["lost"],
        },
        determinism={
            "digest": run["digest"],
            "replay_digest": replay["digest"],
            "match": run["digest"] == replay["digest"],
        },
        stats=run["releveler_stats"],
    )


def report(result: RelevelingResult) -> None:
    print_header(
        "T4",
        "Runtime re-leveling: advisor-driven SRO -> EWO demotion, live",
        "a misdeclared write-per-packet meter is demoted under chaos with "
        "zero committed-write loss and a collapse in NF write latency",
    )
    print_table(
        ["Phase", "Packets", "Mean", "p50", "p99", "Max"],
        [
            (label, s["packets"], fmt_us(s["mean_us"] / 1e6),
             fmt_us(s["p50_us"] / 1e6), fmt_us(s["p99_us"] / 1e6),
             fmt_us(s["max_us"] / 1e6))
            for label, s in (("SRO (misdeclared)", result.pre),
                             ("EWO (demoted)", result.post))
        ],
    )
    h = result.handoff
    print(
        f"advice: {result.advice['declared'].upper()} -> "
        f"{result.advice['recommended'].upper()} "
        f"(confidence {result.advice['confidence']}); "
        f"handoff {h['duration_seconds'] * 1e3:.2f}ms with "
        f"{h['leader_kills']} leader kill(s), {h['resumed']} resume(s), "
        f"{h['rollbacks']} rollback(s)"
    )
    print(
        f"committed writes lost: {result.loss['committed_writes_lost']} "
        f"(of {result.loss['committed_keys']} keys x "
        f"{result.loss['replicas']} replicas); "
        f"write latency improvement: {result.write_latency_improvement:.1f}x; "
        f"same-seed replay match: {result.determinism['match']}"
    )


def check_result(result: RelevelingResult) -> None:
    # The advisor's recommendation is what drove the handoff.
    assert result.advice["declared"] == "sro"
    assert result.advice["recommended"] == "ewo"
    assert result.advice["mismatch"] and result.advice["confidence"] == "high"
    # The handoff completed under chaos, resumed by the successor leader.
    h = result.handoff
    assert h["final_level"] == "ewo"
    assert h["completed"] == 1 and h["rollbacks"] == 0
    assert h["leader_kills"] == 1 and h["resumed"] >= 1
    assert h["duration_seconds"] < 0.1
    # Zero committed-write loss across every replica.
    assert result.loss["committed_writes_lost"] == 0
    assert result.loss["committed_keys"] > 0
    # The demotion bought real per-packet latency.
    assert result.write_latency_improvement > 2.0, (
        f"expected >2x write-latency improvement, got "
        f"{result.write_latency_improvement:.2f}x"
    )
    assert result.post["p99_us"] < result.pre["p99_us"]
    # Chaos run replays byte-identically from its seed.
    assert result.determinism["match"]


@pytest.mark.benchmark(group="experiment")
def test_releveling_demotes_live(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(result)
    check_result(result)


@pytest.mark.benchmark(group="releveling")
def test_benchmark_releveling(benchmark):
    benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="halve the flow count per phase"
    )
    args = parser.parse_args(argv)
    result = run_experiment(quick=args.quick)
    report(result)
    check_result(result)
    emit_json("T4", "Runtime re-leveling handoff", result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
