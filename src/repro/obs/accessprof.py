"""Streaming per-register access-pattern profiler.

The paper's Table 1 labels each NF's state by write frequency, read
frequency, and consistency requirement — *by hand*.  This module is the
measurement half of the adaptive-consistency north star (ROADMAP item
3): an :class:`AccessProfiler` that the protocol hot paths feed directly
(SRO write initiate/apply, EWO local write/merge, every mediated
register read), maintaining per register group and per key:

* read/write mix, split by originating switch (cross-switch sharing set,
  writer-set cardinality — single- vs multi-writer);
* write origin: data-plane (inside a packet pass) vs control-plane
  (management API, window tasks) — the observable that separates SRO
  candidates (flow-driven writes racing packet reads) from ERO
  candidates (rare control-plane pushes);
* write-operation kinds (overwrite vs commutative increment/set deltas),
  from which mergeability is inferred without annotations;
* an inter-write-interval histogram (fixed log-spaced buckets);
* EWO merge outcomes (applied vs stale) — the merge-conflict rate;
* sim-time-windowed activity for "hot right now" ranking.

Memory is bounded: each group keeps detailed :class:`KeyProfile` records
for an exact top-K key table, with the tail absorbed by a
:class:`~repro.sketch.countmin.CountMinSketch`.  A tail key whose sketch
estimate overtakes the weakest exact entry is promoted (the evicted
entry's counts fold back into the sketch), so heavy hitters surface
regardless of arrival order.

Like the rest of ``repro.obs``, profiling is **digest-neutral**: hooks
only mutate profiler-internal state — no events are scheduled, no RNG
streams are drawn, and windows roll lazily off the sim clock carried by
the caller.  An instrumented chaos replay stays byte-identical per seed,
and :data:`NULL_ACCESS_PROFILER` (the deployment default) reduces every
hook to one cached attribute check.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.sketch.countmin import CountMinSketch

__all__ = [
    "AccessProfiler",
    "GroupProfile",
    "KeyProfile",
    "WindowedCount",
    "NullAccessProfiler",
    "NULL_ACCESS_PROFILER",
    "DEFAULT_PROFILE_WINDOW",
    "DEFAULT_TOP_K",
    "INTER_WRITE_BOUNDS",
    "COMMUTATIVE_OPS",
]

#: Default activity window (sim seconds): long enough to cover several
#: EWO sync periods, short enough that a hot key cools within a few
#: windows once traffic moves away.
DEFAULT_PROFILE_WINDOW = 10e-3

#: Exact per-key records kept per group; the tail lives in the sketch.
DEFAULT_TOP_K = 32

DEFAULT_SKETCH_DEPTH = 4
DEFAULT_SKETCH_WIDTH = 512

#: Inter-write-interval bucket bounds (seconds): 1 us .. 100 ms,
#: 1-2-5 spaced.  Spans back-to-back per-packet writes up to one write
#: per enforcement window.
INTER_WRITE_BOUNDS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1,
)

#: Write-op kinds that commute under EWO merge (CRDT deltas).  Observing
#: only these for a group means its writes are mergeable by construction.
COMMUTATIVE_OPS = frozenset({"increment", "set_add", "set_remove"})


class WindowedCount:
    """A tumbling two-window counter driven by the caller's sim clock.

    Keeps the current and previous window's counts plus the lifetime
    total.  Rolling is lazy — performed on the next ``add``/``rate``
    call — so the profiler never schedules events of its own (that
    would perturb replay digests).
    """

    __slots__ = ("window", "index", "current", "previous", "total")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.index = 0
        self.current = 0
        self.previous = 0
        self.total = 0

    def _roll(self, now: float) -> None:
        index = int(now / self.window)
        if index != self.index:
            self.previous = self.current if index == self.index + 1 else 0
            self.current = 0
            self.index = index

    def add(self, now: float, amount: int = 1) -> None:
        self._roll(now)
        self.current += amount
        self.total += amount

    def windowed(self, now: float) -> float:
        """Sliding-window count estimate at ``now`` (previous window
        weighted by its remaining overlap)."""
        index = int(now / self.window)
        if index == self.index:
            current, previous = self.current, self.previous
        elif index == self.index + 1:
            current, previous = 0, self.current
        else:
            return 0.0
        fraction = (now / self.window) - index
        return current + (1.0 - fraction) * previous

    def rate(self, now: float) -> float:
        """Estimated events/second over the sliding window."""
        return self.windowed(now) / self.window


class KeyProfile:
    """Detailed per-key statistics (exact top-K residents only)."""

    __slots__ = (
        "key",
        "reads",
        "writes",
        "applies",
        "merges_applied",
        "merges_stale",
        "readers",
        "writers",
        "ops",
        "last_write_at",
        "inter_write",
        "activity",
        "prior",
        "first_seen",
    )

    def __init__(self, key: Any, window: float, now: float, prior: int = 0) -> None:
        self.key = key
        self.reads = 0
        self.writes = 0
        self.applies = 0
        self.merges_applied = 0
        self.merges_stale = 0
        #: node -> count maps; their key sets are the sharing sets.
        self.readers: Dict[str, int] = {}
        self.writers: Dict[str, int] = {}
        self.ops: Dict[str, int] = {}
        self.last_write_at: Optional[float] = None
        self.inter_write = Histogram(
            "accessprof.inter_write_seconds", bounds=INTER_WRITE_BOUNDS
        )
        self.activity = WindowedCount(window)
        #: Sketch-estimated accesses from before promotion (tail life).
        self.prior = prior
        self.first_seen = now

    @property
    def accesses(self) -> int:
        """Total observed accesses, tail estimate included (the
        promotion/eviction comparison quantity)."""
        return self.prior + self.reads + self.writes

    def node_set(self) -> List[str]:
        return sorted(set(self.readers) | set(self.writers))

    def as_dict(self, now: float) -> Dict[str, Any]:
        return {
            "key": repr(self.key),
            "reads": self.reads,
            "writes": self.writes,
            "applies": self.applies,
            "merges_applied": self.merges_applied,
            "merges_stale": self.merges_stale,
            "readers": dict(sorted(self.readers.items())),
            "writers": dict(sorted(self.writers.items())),
            "writer_nodes": len(self.writers),
            "sharing_nodes": len(set(self.readers) | set(self.writers)),
            "ops": dict(sorted(self.ops.items())),
            "tail_estimate": self.prior,
            "inter_write_p50": self.inter_write.p50,
            "inter_write_p99": self.inter_write.p99,
            "windowed_rate": self.activity.rate(now),
        }


class GroupProfile:
    """One register group's aggregate profile plus its top-K key table."""

    __slots__ = (
        "group_id",
        "name",
        "declared",
        "ewo_mode",
        "nf",
        "reads",
        "peeks",
        "writes",
        "writes_dataplane",
        "writes_control",
        "applies",
        "merges_applied",
        "merges_stale",
        "reads_by_node",
        "writes_by_node",
        "ops",
        "last_write_at",
        "inter_write",
        "read_activity",
        "write_activity",
        "keys",
        "sketch",
        "top_k",
        "promotions",
        "evictions",
    )

    def __init__(
        self,
        group_id: int,
        name: str,
        declared: str,
        ewo_mode: Optional[str],
        window: float,
        top_k: int,
        sketch_depth: int,
        sketch_width: int,
    ) -> None:
        self.group_id = group_id
        self.name = name
        self.declared = declared
        self.ewo_mode = ewo_mode
        self.nf: Optional[str] = None
        self.reads = 0
        self.peeks = 0
        self.writes = 0
        self.writes_dataplane = 0
        self.writes_control = 0
        self.applies = 0
        self.merges_applied = 0
        self.merges_stale = 0
        self.reads_by_node: Dict[str, int] = {}
        self.writes_by_node: Dict[str, int] = {}
        self.ops: Dict[str, int] = {}
        self.last_write_at: Optional[float] = None
        self.inter_write = Histogram(
            "accessprof.inter_write_seconds", bounds=INTER_WRITE_BOUNDS
        )
        self.read_activity = WindowedCount(window)
        self.write_activity = WindowedCount(window)
        self.keys: Dict[Any, KeyProfile] = {}
        #: Tail counts.  The seed is derived from the group id so the
        #: hashing is deterministic per group, never from process state.
        self.sketch = CountMinSketch(
            depth=sketch_depth, width=sketch_width, seed=group_id
        )
        self.top_k = top_k
        self.promotions = 0
        self.evictions = 0

    # -- derived --------------------------------------------------------
    @property
    def writer_nodes(self) -> int:
        return len(self.writes_by_node)

    @property
    def sharing_nodes(self) -> int:
        return len(set(self.reads_by_node) | set(self.writes_by_node))

    @property
    def merge_conflict_rate(self) -> float:
        merges = self.merges_applied + self.merges_stale
        return self.merges_stale / merges if merges else 0.0

    @property
    def dataplane_write_fraction(self) -> float:
        return self.writes_dataplane / self.writes if self.writes else 0.0

    @property
    def commutative_write_fraction(self) -> float:
        if not self.writes:
            return 0.0
        commutative = sum(
            count for op, count in sorted(self.ops.items()) if op in COMMUTATIVE_OPS
        )
        return commutative / self.writes

    # -- top-K maintenance ---------------------------------------------
    def key_profile(self, key: Any, now: float) -> Optional[KeyProfile]:
        """The key's exact record, promoting from the tail if warranted.

        Returns None while the key stays in the sketch tail.  Eviction
        picks the weakest exact entry by (accesses, repr) so the choice
        never depends on dict iteration order.
        """
        profile = self.keys.get(key)
        if profile is not None:
            return profile
        if len(self.keys) < self.top_k:
            profile = KeyProfile(key, self.read_activity.window, now)
            self.keys[key] = profile
            self.promotions += 1
            return profile
        self.sketch.add(key)
        estimate = self.sketch.estimate(key)
        weakest = min(self.keys.values(), key=lambda p: (p.accesses, repr(p.key)))
        if estimate <= weakest.accesses:
            return None
        # Fold the evicted resident's exact counts back into the sketch
        # so its totals survive demotion (it may get promoted again).
        self.sketch.add(weakest.key, weakest.reads + weakest.writes)
        del self.keys[weakest.key]
        self.evictions += 1
        self.promotions += 1
        profile = KeyProfile(key, self.read_activity.window, now, prior=estimate)
        self.keys[key] = profile
        return profile

    def hot_keys(self, now: float, limit: int = 10) -> List[Dict[str, Any]]:
        ranked = sorted(
            self.keys.values(), key=lambda p: (-p.accesses, repr(p.key))
        )
        return [profile.as_dict(now) for profile in ranked[:limit]]

    def as_dict(self, now: float, hot_keys: int = 10) -> Dict[str, Any]:
        return {
            "group": self.group_id,
            "name": self.name,
            "nf": self.nf,
            "declared": self.declared,
            "ewo_mode": self.ewo_mode,
            "reads": self.reads,
            "peeks": self.peeks,
            "writes": self.writes,
            "writes_dataplane": self.writes_dataplane,
            "writes_control": self.writes_control,
            "applies": self.applies,
            "merges_applied": self.merges_applied,
            "merges_stale": self.merges_stale,
            "merge_conflict_rate": self.merge_conflict_rate,
            "reads_by_node": dict(sorted(self.reads_by_node.items())),
            "writes_by_node": dict(sorted(self.writes_by_node.items())),
            "writer_nodes": self.writer_nodes,
            "sharing_nodes": self.sharing_nodes,
            "ops": dict(sorted(self.ops.items())),
            "inter_write_p50": self.inter_write.p50,
            "inter_write_p99": self.inter_write.p99,
            "windowed_read_rate": self.read_activity.rate(now),
            "windowed_write_rate": self.write_activity.rate(now),
            "tracked_keys": len(self.keys),
            "tail_items": self.sketch.items_added,
            "promotions": self.promotions,
            "evictions": self.evictions,
            "hot_keys": self.hot_keys(now, limit=hot_keys),
        }


class AccessProfiler:
    """Deployment-wide streaming access profiler.

    Pass one to :class:`~repro.core.manager.SwiShmemDeployment` via the
    ``access_profiler`` keyword *at construction* — engines cache it
    (and its ``enabled`` flag) when they are built, exactly like the
    metrics registry::

        profiler = AccessProfiler()
        deployment = SwiShmemDeployment(sim, topo, nodes, access_profiler=profiler)
        ...
        print(profiler.snapshot()["groups"][0]["hot_keys"])
    """

    #: Hot paths cache this to skip the hook calls entirely when off.
    enabled = True

    def __init__(
        self,
        window: float = DEFAULT_PROFILE_WINDOW,
        top_k: int = DEFAULT_TOP_K,
        sketch_depth: int = DEFAULT_SKETCH_DEPTH,
        sketch_width: int = DEFAULT_SKETCH_WIDTH,
    ) -> None:
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.window = window
        self.top_k = top_k
        self.sketch_depth = sketch_depth
        self.sketch_width = sketch_width
        self.groups: Dict[int, GroupProfile] = {}
        self._by_name: Dict[str, GroupProfile] = {}
        self.events = 0
        self.last_event_at = 0.0

    # ------------------------------------------------------------------
    # Registration (deployment declare / NF install)
    # ------------------------------------------------------------------
    def describe_group(self, spec: Any) -> GroupProfile:
        """Register a group's identity (called from ``declare``)."""
        profile = self.groups.get(spec.group_id)
        if profile is None:
            ewo_mode = getattr(spec, "ewo_mode", None)
            profile = GroupProfile(
                spec.group_id,
                spec.name,
                spec.consistency.value,
                ewo_mode.value if ewo_mode is not None else None,
                self.window,
                self.top_k,
                self.sketch_depth,
                self.sketch_width,
            )
            self.groups[spec.group_id] = profile
            self._by_name[spec.name] = profile
        else:
            # Re-registration after a runtime re-level: the declared
            # side of the advisor's comparison must track the new spec.
            profile.declared = spec.consistency.value
        return profile

    def note_nf(self, group_id: int, nf_name: str) -> None:
        """Attribute a group to the NF that owns its handle (called from
        :class:`~repro.nf.base.NetworkFunction`)."""
        profile = self.groups.get(group_id)
        if profile is not None and profile.nf is None:
            profile.nf = nf_name

    def _group(self, group_id: int) -> Optional[GroupProfile]:
        return self.groups.get(group_id)

    # ------------------------------------------------------------------
    # Hot-path hooks (all passive: mutate profiler state only)
    # ------------------------------------------------------------------
    def on_read(
        self, group_id: int, key: Any, node: str, now: float, peek: bool = False
    ) -> None:
        group = self.groups.get(group_id)
        if group is None:
            return
        self.events += 1
        self.last_event_at = now
        group.reads += 1
        if peek:
            group.peeks += 1
        group.reads_by_node[node] = group.reads_by_node.get(node, 0) + 1
        group.read_activity.add(now)
        profile = group.key_profile(key, now)
        if profile is not None:
            profile.reads += 1
            profile.readers[node] = profile.readers.get(node, 0) + 1
            profile.activity.add(now)

    def on_write(
        self,
        group_id: int,
        key: Any,
        node: str,
        now: float,
        origin: str = "dataplane",
        op: str = "overwrite",
    ) -> None:
        group = self.groups.get(group_id)
        if group is None:
            return
        self.events += 1
        self.last_event_at = now
        group.writes += 1
        if origin == "dataplane":
            group.writes_dataplane += 1
        else:
            group.writes_control += 1
        group.writes_by_node[node] = group.writes_by_node.get(node, 0) + 1
        group.ops[op] = group.ops.get(op, 0) + 1
        group.write_activity.add(now)
        if group.last_write_at is not None:
            group.inter_write.observe(now - group.last_write_at)
        group.last_write_at = now
        profile = group.key_profile(key, now)
        if profile is not None:
            profile.writes += 1
            profile.writers[node] = profile.writers.get(node, 0) + 1
            profile.ops[op] = profile.ops.get(op, 0) + 1
            profile.activity.add(now)
            if profile.last_write_at is not None:
                profile.inter_write.observe(now - profile.last_write_at)
            profile.last_write_at = now

    def on_apply(self, group_id: int, key: Any, node: str, now: float) -> None:
        """A chain update applied at a (non-initiating) SRO/ERO member."""
        group = self.groups.get(group_id)
        if group is None:
            return
        self.events += 1
        self.last_event_at = now
        group.applies += 1
        profile = group.keys.get(key)
        if profile is not None:
            profile.applies += 1

    def on_merge(
        self,
        group_id: int,
        key: Any,
        node: str,
        origin: str,
        applied: bool,
        now: float,
    ) -> None:
        """One EWO entry merged (or found stale) at a receiver."""
        group = self.groups.get(group_id)
        if group is None:
            return
        self.events += 1
        self.last_event_at = now
        if applied:
            group.merges_applied += 1
        else:
            group.merges_stale += 1
        profile = group.keys.get(key)
        if profile is not None:
            if applied:
                profile.merges_applied += 1
            else:
                profile.merges_stale += 1

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def group(self, name: str) -> GroupProfile:
        return self._by_name[name]

    def group_names(self) -> List[str]:
        return sorted(self._by_name)

    def hot_keys(self, limit: int = 10, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Deployment-wide hot-key ranking (feeds migration decisions)."""
        at = self.last_event_at if now is None else now
        ranked: List[Tuple[int, str, str, KeyProfile]] = []
        for group in self.groups.values():
            for profile in group.keys.values():
                ranked.append((profile.accesses, group.name, repr(profile.key), profile))
        ranked.sort(key=lambda item: (-item[0], item[1], item[2]))
        return [
            dict(item[3].as_dict(at), group=item[1])
            for item in ranked[:limit]
        ]

    def snapshot(self, now: Optional[float] = None, hot_keys: int = 10) -> Dict[str, Any]:
        """JSON-ready, deterministically ordered profile export."""
        at = self.last_event_at if now is None else now
        return {
            "window": self.window,
            "top_k": self.top_k,
            "events": self.events,
            "groups": [
                self.groups[group_id].as_dict(at, hot_keys=hot_keys)
                for group_id in sorted(self.groups)
            ],
        }


class NullAccessProfiler(AccessProfiler):
    """The deployment default: every hook is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def describe_group(self, spec: Any) -> None:  # type: ignore[override]
        return None

    def note_nf(self, group_id: int, nf_name: str) -> None:
        return None

    def on_read(self, group_id, key, node, now, peek=False) -> None:
        return None

    def on_write(self, group_id, key, node, now, origin="dataplane", op="overwrite") -> None:
        return None

    def on_apply(self, group_id, key, node, now) -> None:
        return None

    def on_merge(self, group_id, key, node, origin, applied, now) -> None:
        return None


#: Shared no-op profiler; hot paths bound to it pay one attribute check.
NULL_ACCESS_PROFILER = NullAccessProfiler()
