"""The SwiShmem runtime: per-switch manager and deployment facade.

Two classes make up the paper's "one big switch" abstraction:

* :class:`SwiShmemManager` — one per switch.  It owns the protocol
  engines (SRO/ERO chain, EWO broadcast+sync), installs the replication
  packet handler in front of NF code, supplies NFs with
  :class:`~repro.core.registers.RegisterHandle` objects, and mediates
  every register access: collecting SRO write sets, applying EWO writes
  inline, and forwarding reads that hit pending slots.

* :class:`SwiShmemDeployment` — one per experiment.  It wires a set of
  :class:`~repro.switch.pisa.PisaSwitch` nodes into a single logical NF
  processor: shared routing, multicast groups, chain descriptors, clock
  distribution, the central controller, and NF installation on every
  switch.  Experiments declare register groups once; the deployment
  replicates them everywhere ("we begin by assuming that each register
  is replicated on every switch", section 5).

NF programs interact only with :class:`PacketContext` and
:class:`RegisterHandle` — they cannot tell which switch they run on,
which is the entire point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.analysis.history import HistoryRecorder
from repro.core.chain import ChainDescriptor
from repro.core.registers import (
    Consistency,
    ReadForwarded,
    RegisterHandle,
    RegisterSpec,
)
from repro.crdt.clock import HybridClock
from repro.net.endhost import AddressBook
from repro.net.headers import SwiShmemOp
from repro.net.multicast import MulticastRegistry
from repro.net.packet import Packet
from repro.net.routing import RoutingTable
from repro.net.topology import Topology
from repro.obs.accessprof import AccessProfiler, NULL_ACCESS_PROFILER
from repro.obs.causal import CausalClock
from repro.obs.flightrec import FlightRecorder, NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.slo import NULL_SLO_MONITOR, SLOMonitor
from repro.protocols.antientropy import ScrubAgent
from repro.protocols.ewo import EwoEngine
from repro.protocols.messages import WriteToken
from repro.protocols.sro import SroEngine
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switch.pisa import PisaSwitch
from repro.switch.pktgen import PacketGenerator

__all__ = ["Decision", "PacketContext", "SwiShmemManager", "SwiShmemDeployment"]

#: Bound on per-switch clock offset, modeling data-plane time sync
#: "down to tens of nanoseconds" (paper section 6.2).
DEFAULT_CLOCK_SKEW = 50e-9

#: Default EWO packet-generator sync period (paper's 1 ms example).
DEFAULT_SYNC_PERIOD = 1e-3


@dataclass(frozen=True)
class Decision:
    """What an NF wants done with the packet it just processed."""

    kind: str  # "forward_ip" | "forward_node" | "drop" | "consume"
    dst_node: Optional[str] = None

    FORWARD_IP = "forward_ip"
    FORWARD_NODE = "forward_node"
    DROP = "drop"
    #: The NF already disposed of the packet itself (rare).
    CONSUME = "consume"

    @classmethod
    def forward(cls) -> "Decision":
        """Forward by the packet's (possibly rewritten) destination IP."""
        return cls(kind=cls.FORWARD_IP)

    @classmethod
    def forward_to(cls, node: str) -> "Decision":
        return cls(kind=cls.FORWARD_NODE, dst_node=node)

    @classmethod
    def drop(cls) -> "Decision":
        return cls(kind=cls.DROP)

    @classmethod
    def consume(cls) -> "Decision":
        return cls(kind=cls.CONSUME)


class PacketContext:
    """Everything an NF handler may touch while processing one packet."""

    __slots__ = ("manager", "packet", "from_node", "write_set", "now", "on_release")

    def __init__(self, manager: "SwiShmemManager", packet: Packet, from_node: str) -> None:
        self.manager = manager
        self.packet = packet
        self.from_node = from_node
        self.now = manager.sim.now
        #: Strong (SRO/ERO) writes collected during this pass: Q.
        self.write_set: List[Tuple[RegisterSpec, Any, Any]] = []
        #: Optional hook ``(output_packet, results) -> None`` invoked
        #: when the buffered output is released; ``results`` maps each
        #: written key to its committed value (fetch-add results).
        self.on_release: Optional[Any] = None

    @property
    def switch_name(self) -> str:
        return self.manager.switch.name

    @property
    def at_tail(self) -> bool:
        """Whether this packet arrived via tail read-forwarding."""
        return bool(self.packet.meta.get("at_tail_groups"))


@dataclass
class _RelevelFence:
    """Write fence for one group during a re-level handoff.

    While installed, new writes land in the ``overlay`` (a write-through
    cache applied to the target engine at unfence) instead of the
    protocol engines, so the drained state stays frozen across the
    switch.  Reads consult the overlay first — a writer observes its own
    fenced writes.  Only overwrite-semantics (LWW) groups are
    re-levelable, so last-write-wins replay of the overlay is exact.
    """

    group_id: int
    epoch: int
    overlay: Dict[Any, Any] = dataclass_field(default_factory=dict)
    writes_fenced: int = 0


class SwiShmemManager:
    """Per-switch SwiShmem runtime."""

    def __init__(self, switch: PisaSwitch, deployment: "SwiShmemDeployment") -> None:
        self.switch = switch
        self.deployment = deployment
        self.sim: Simulator = deployment.sim
        self.rng: SeededRng = deployment.rng
        node_id = deployment.node_id(switch.name)
        self.clock = HybridClock(
            node_id=node_id,
            read_true_time=lambda: self.sim.now,
            offset=deployment.clock_offset(switch.name),
        )
        #: Causal tracing clock (repro.obs.causal): Lamport counter plus
        #: deterministic span-id allocation.  Must exist before the
        #: engines, which cache it at construction.
        self.causal = CausalClock(switch.name)
        self.sro = SroEngine(self)
        self.ewo = EwoEngine(self, sync_period=deployment.sync_period)
        #: Member-side anti-entropy agent: digest trees over this
        #: switch's register groups plus repair application.
        self.scrub = ScrubAgent(self)
        self._bind_observability()
        #: Live consistency level per group on this switch.  Seeded by
        #: ``add_group`` and rewritten by ``relevel_switch`` commands;
        #: every per-access branch on consistency goes through
        #: ``level_of`` so a re-level takes effect mid-run.  This is
        #: deliberately per-manager (not read off the shared spec): the
        #: spec mutates once on the leader while switch commands land at
        #: different times per switch, and each switch must keep routing
        #: to the engine it actually has installed.
        self._levels: Dict[int, Consistency] = {}
        #: Active re-level write fences by group id.
        self._relevel_fences: Dict[int, _RelevelFence] = {}
        self._handles: Dict[int, RegisterHandle] = {}
        self._sync_generators: Dict[int, PacketGenerator] = {}
        self._ctx: Optional[PacketContext] = None
        self.nfs: List[Any] = []
        #: Highest controller epoch this switch has obeyed.  Commands
        #: stamped with a lower epoch come from a deposed leader and are
        #: rejected (controller failover fencing, see protocols.election).
        self.controller_epoch = 0
        self.fenced_commands = 0
        switch.install_handler(self._protocol_handler, front=True)

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks (construction
        and ``Deployment.rebind_observability``)."""
        metrics = self.deployment.metrics
        self._metrics_on = metrics.enabled
        self._m_reads = metrics.counter("state.reads", self.switch.name)
        self._m_writes = metrics.counter("state.writes", self.switch.name)
        # Access-pattern profiler (repro.obs.accessprof): like metrics,
        # cached with its enabled flag; all hooks are passive
        # (profiler-internal state only, digest-neutral).
        self._accessprof = self.deployment.access_profiler
        self._accessprof_on = self._accessprof.enabled

    # ------------------------------------------------------------------
    # Replication traffic dispatch
    # ------------------------------------------------------------------
    def _protocol_handler(self, packet: Packet, from_node: str) -> bool:
        header = packet.swishmem
        if header is None:
            return False
        if header.dst_node is not None and header.dst_node != self.switch.name:
            # In transit: this replication packet is addressed to another
            # switch; forward it along without touching the protocol state.
            self.switch.forward_to_node(packet, header.dst_node)
            return True
        op = header.op
        payload = packet.swishmem_payload
        if op is SwiShmemOp.WRITE_REQUEST:
            self.sro._receive_write_request(payload)
            return True
        if op is SwiShmemOp.CHAIN_UPDATE:
            self.sro.handle_chain_update(payload)
            return True
        if op is SwiShmemOp.WRITE_ACK:
            self.sro.handle_write_ack(payload)
            return True
        if op is SwiShmemOp.READ_FORWARD:
            return self.sro.handle_read_forward(packet, header.register_group)
        if op in (SwiShmemOp.EWO_UPDATE, SwiShmemOp.EWO_SYNC):
            self.ewo.handle_update(payload)
            return True
        if op is SwiShmemOp.SCRUB_REPAIR:
            self.scrub.handle_repair(payload)
            return True
        if op is SwiShmemOp.SNAPSHOT_WRITE:
            self.deployment.failover.handle_snapshot_write(self, payload)
            return True
        if op is SwiShmemOp.SNAPSHOT_ACK:
            self.deployment.failover.handle_snapshot_ack(self, payload)
            return True
        if op is SwiShmemOp.HEARTBEAT:
            # This switch hosts a controller replica: hand the beacon up
            # the management port (the cluster routes it to whichever
            # replica is homed here).
            self.deployment.controller.on_heartbeat(payload, self.switch.name)
            return True
        return True  # unknown replication op: drop rather than misroute

    # ------------------------------------------------------------------
    # Controller command handling (epoch-fenced, management plane)
    # ------------------------------------------------------------------
    def observe_controller_epoch(self, epoch: int) -> None:
        """Adopt a newer controller epoch (reconstruction queries carry
        it, so a successor's takeover fences the old leader at every
        switch it can reach even before its first command)."""
        if epoch > self.controller_epoch:
            self.controller_epoch = epoch

    def apply_controller_command(self, command: Any) -> bool:
        """Validate and apply one configuration command.

        Returns False — counting a fenced command — when the command's
        epoch is below the highest this switch has obeyed: it was issued
        by a since-deposed leader and must not land."""
        flightrec = self.deployment.flight_recorder
        ctx = (
            self.causal.child(command.trace) if command.trace is not None else None
        )
        if command.epoch < self.controller_epoch:
            self.fenced_commands += 1
            self.deployment.tracer.emit(
                self.sim.now,
                "controller",
                self.switch.name,
                "fenced-command",
                kind=command.kind,
                epoch=command.epoch,
                current=self.controller_epoch,
            )
            if flightrec.enabled and ctx is not None:
                flightrec.record(
                    ctx,
                    "controller.command.fenced",
                    self.switch.name,
                    self.sim.now,
                    group=command.group,
                    kind=command.kind,
                    command_epoch=command.epoch,
                    fencing_epoch=self.controller_epoch,
                )
            return False
        self.controller_epoch = command.epoch
        if command.kind == "set_chain":
            self.sro.set_chain(command.group, command.payload)
        elif command.kind == "set_catching_up":
            self.sro.set_catching_up(command.group, bool(command.payload))
        elif command.kind == "relevel_fence":
            self._apply_relevel_fence(command)
        elif command.kind == "relevel_switch":
            self._apply_relevel_switch(command)
        elif command.kind == "relevel_unfence":
            self._apply_relevel_unfence(command)
        else:
            raise ValueError(f"unknown controller command kind {command.kind!r}")
        if flightrec.enabled and ctx is not None:
            flightrec.record(
                ctx,
                "controller.command.apply",
                self.switch.name,
                self.sim.now,
                group=command.group,
                kind=command.kind,
                epoch=command.epoch,
            )
        return True

    # ------------------------------------------------------------------
    # Runtime re-leveling (repro.protocols.releveling)
    # ------------------------------------------------------------------
    def level_of(self, spec: RegisterSpec) -> Consistency:
        """The group's *live* consistency level on this switch.

        Never branch a register access on ``spec.consistency`` directly:
        the spec is shared and rewritten once by the re-leveling leader,
        while the engine switch lands per-switch via ``relevel_switch``
        commands.  This map tracks what this switch actually installed.
        """
        return self._levels.get(spec.group_id, spec.consistency)

    def relevel_fence_for(self, group_id: int) -> Optional[_RelevelFence]:
        return self._relevel_fences.get(group_id)

    def _apply_relevel_fence(self, command: Any) -> None:
        """Phase 1 (drain): stop feeding the engines new writes.

        Idempotent — a takeover leader resumes by re-sending fences.  An
        EWO source additionally flushes queued local entries so the
        drain settle window covers everything this replica produced.
        """
        group_id = command.group
        if group_id in self._relevel_fences:
            return
        self._relevel_fences[group_id] = _RelevelFence(
            group_id=group_id, epoch=command.epoch
        )
        spec = self.deployment.specs[group_id]
        if self.level_of(spec) is Consistency.EWO and group_id in self.ewo.groups:
            self.ewo.flush(group_id)

    def _apply_relevel_switch(self, command: Any) -> None:
        """Phase 2 (switch): tear down the old engine, install and seed
        the new one.  Idempotent per-switch via the live-level guard, so
        a takeover leader can blindly re-send it."""
        group_id = command.group
        payload = command.payload
        spec = self.deployment.specs[group_id]
        target = Consistency(payload["target"])
        current = self.level_of(spec)
        if current is target:
            return
        if target is Consistency.EWO:
            # Demotion: chain replica -> broadcast replica, seeded with
            # the drained head snapshot under one controller stamp.
            self.sro.remove_group(group_id)
            members = list(payload["members"])
            if self.switch.name in members:
                self.ewo.add_group(spec, members, self.clock)
                self.ewo.seed_group(group_id, payload["seed"], payload["stamp"])
                self._start_ewo_sync(group_id)
        elif current is Consistency.EWO:
            # Promotion: broadcast replica -> chain replica, seeded with
            # the merged LWW state.  Seed seqs are assigned per slot in
            # sorted-key order, so every member lands identical
            # (store, applied_seq) state.
            self._stop_ewo_sync(group_id)
            self.ewo.remove_group(group_id)
            state = self.sro.add_group(spec, payload["chain"])
            state.track_pending = target is Consistency.SRO
            seq_by_slot: Dict[int, int] = {}
            for key, value in payload["seed"]:
                slot = state.pending.slot_of(key)
                seq = seq_by_slot.get(slot, 0) + 1
                seq_by_slot[slot] = seq
                self.sro.apply_snapshot_write(key, value, slot, seq, group_id)
        else:
            # SRO <-> ERO: same chain engine, flip pending-bit tracking.
            self.sro.set_track_pending(group_id, target is Consistency.SRO)
        self._levels[group_id] = target

    def _apply_relevel_unfence(self, command: Any) -> None:
        """Phase 3 (unfence): release writes under the new level.

        Fenced writes replay through the normal write path in sorted-key
        order; the groups eligible for re-leveling have overwrite (LWW)
        semantics, so replaying each key's last fenced value is exact.
        """
        fence = self._relevel_fences.pop(command.group, None)
        if fence is None:
            return
        spec = self.deployment.specs[command.group]
        for key in sorted(fence.overlay, key=repr):
            self.register_write(spec, key, fence.overlay[key])

    # ------------------------------------------------------------------
    # Register group plumbing (called by the deployment)
    # ------------------------------------------------------------------
    def add_group(self, spec: RegisterSpec, chain: Optional[ChainDescriptor], members: List[str]) -> None:
        self._levels[spec.group_id] = spec.consistency
        if spec.consistency is Consistency.EWO:
            self.ewo.add_group(spec, members, self.clock)
            self._start_ewo_sync(spec.group_id)
        else:
            assert chain is not None
            self.sro.add_group(spec, chain)
        self._handles[spec.group_id] = RegisterHandle(spec, self)

    def handle(self, spec: RegisterSpec) -> RegisterHandle:
        return self._handles[spec.group_id]

    def _start_ewo_sync(self, group_id: int) -> None:
        """Start (or replace) the periodic EWO sync generator."""
        old = self._sync_generators.pop(group_id, None)
        if old is not None:
            old.stop()
        spec = self.deployment.specs[group_id]
        generator = PacketGenerator(
            self.switch,
            period=self.deployment.sync_period,
            body=lambda gid=group_id: self.ewo.sync_tick(gid),
            name=f"ewo-sync:{spec.name}",
            phase=self.deployment.sync_phase(self.switch.name, group_id),
        )
        generator.start()
        self._sync_generators[group_id] = generator

    def _stop_ewo_sync(self, group_id: int) -> None:
        generator = self._sync_generators.pop(group_id, None)
        if generator is not None:
            generator.stop()

    def restart_ewo_sync(self, group_id: int) -> None:
        """Restart the periodic sync generator after a recovery.

        The old generator self-stopped when the switch failed; a fresh
        one is created with a newly staggered phase.
        """
        self._start_ewo_sync(group_id)

    # ------------------------------------------------------------------
    # NF installation
    # ------------------------------------------------------------------
    def install_nf(self, nf: Any) -> None:
        """Install an NF whose ``process(ctx) -> Decision`` handles packets.

        Multiple NFs on one switch *compose*: they run in installation
        order within a single pipeline pass (stages of one program), all
        sharing the packet's context — and therefore one write set Q and
        one buffered-output barrier.  A DROP, CONSUME, or explicit
        redirect from any NF ends the chain.
        """
        self.nfs.append(nf)
        if len(self.nfs) == 1:
            self.switch.install_handler(self._nf_chain_handler)

    def _nf_chain_handler(self, packet: Packet, from_node: str) -> bool:
        if packet.swishmem is not None:
            return False
        if not self.nfs:
            return False
        ctx = PacketContext(self, packet, from_node)
        self._ctx = ctx
        decision = Decision.forward()
        try:
            for nf in self.nfs:
                result = nf.process(ctx)
                if result is not None:
                    decision = result
                if decision.kind in (Decision.DROP, Decision.CONSUME, Decision.FORWARD_NODE):
                    break
        except ReadForwarded:
            # The packet is already on its way to the tail.
            return True
        finally:
            self._ctx = None
        return self._finalize(ctx, decision)

    def _finalize(self, ctx: PacketContext, decision: Decision) -> bool:
        """Apply the write set and dispose of the output packet.

        With strong writes pending, the output is buffered by the
        control plane and released on commit (paper 6.1); otherwise the
        packet leaves immediately.
        """
        if ctx.write_set:
            output_packet, output_dst = self._resolve_output(ctx, decision)
            self.sro.initiate_writes(
                ctx.write_set, output_packet, output_dst, on_release=ctx.on_release
            )
            return True
        if decision.kind == Decision.DROP:
            self.switch.drop(ctx.packet, reason="nf-drop")
        elif decision.kind == Decision.FORWARD_NODE:
            self.switch.forward_to_node(ctx.packet, decision.dst_node)
        elif decision.kind == Decision.CONSUME:
            pass
        else:
            self.switch.forward_by_ip(ctx.packet)
        return True

    def _resolve_output(
        self, ctx: PacketContext, decision: Decision
    ) -> Tuple[Optional[Packet], Optional[str]]:
        if decision.kind == Decision.DROP or decision.kind == Decision.CONSUME:
            return None, None
        if decision.kind == Decision.FORWARD_NODE:
            return ctx.packet, decision.dst_node
        if ctx.packet.ipv4 is None:
            return None, None
        dst_node = self.deployment.address_book.lookup(ctx.packet.ipv4.dst)
        if dst_node is None:
            return None, None
        return ctx.packet, dst_node

    # ------------------------------------------------------------------
    # Register access mediation (called by RegisterHandle)
    # ------------------------------------------------------------------
    def _note_state_op(self, counter: Any) -> None:
        """Account one register operation: the per-switch counter plus,
        in INT mode, the ``int_state_ops`` metadata the switch stamps
        into this hop's telemetry record."""
        if self._metrics_on:
            counter.inc()
        if self.switch.int_enabled and self._ctx is not None:
            meta = self._ctx.packet.meta
            meta["int_state_ops"] = meta.get("int_state_ops", 0) + 1

    def register_read(self, spec: RegisterSpec, key: Any, default: Any) -> Any:
        self._note_state_op(self._m_reads)
        if self._accessprof_on:
            self._accessprof.on_read(spec.group_id, key, self.switch.name, self.sim.now)
        fence = self._relevel_fences.get(spec.group_id)
        if fence is not None and key in fence.overlay:
            # Mid-handoff: the writer sees its own fenced writes.
            return fence.overlay[key]
        packet = self._ctx.packet if self._ctx is not None else None
        if self.level_of(spec) is Consistency.EWO:
            value = self.ewo.read(spec, key, default)
        else:
            value = self.sro.read(spec, key, default, packet)
        history = self.deployment.history
        if history is not None:
            history.record_instant(
                "read", spec.group_id, key, value, self.switch.name, self.sim.now
            )
        return value

    def register_write(self, spec: RegisterSpec, key: Any, value: Any) -> None:
        self._note_state_op(self._m_writes)
        fence = self._relevel_fences.get(spec.group_id)
        if fence is not None:
            # Mid-handoff: park the write in the fence overlay; it
            # replays through this path at unfence, under the new level
            # (which also records it into the history then).
            fence.overlay[key] = value
            fence.writes_fenced += 1
            return
        if self.level_of(spec) is Consistency.EWO:
            self.ewo.write(spec, key, value)
            history = self.deployment.history
            if history is not None:
                history.record_instant(
                    "write", spec.group_id, key, value, self.switch.name, self.sim.now
                )
            return
        if self._ctx is None:
            # Control-plane-originated write (no packet, nothing to buffer).
            self.sro.initiate_writes([(spec, key, value)], None, None, origin="control")
            return
        self._ctx.write_set.append((spec, key, value))

    def register_fetch_add(self, spec: RegisterSpec, key: Any, amount: int = 1) -> None:
        """Linearizable fetch-add on SRO/ERO state (section 9 sequencer).

        The head assigns ``current + amount`` at sequencing time; the
        committed value is delivered to the packet's ``on_release``
        hook.  EWO counters don't need this — their increments are
        already commutative — so it is rejected there.
        """
        from repro.core.registers import FetchAdd

        self._note_state_op(self._m_writes)
        if self.level_of(spec) is Consistency.EWO:
            raise TypeError(
                f"fetch_add targets strong registers; use increment() on the "
                f"EWO group {spec.name!r}"
            )
        fence = self._relevel_fences.get(spec.group_id)
        if fence is not None:
            # Mid-handoff fetch-add folds into the overlay (no
            # on_release result during the fence window; the fenced sum
            # replays as one overwrite at unfence).
            if key in fence.overlay:
                base = fence.overlay[key]
            else:
                state = self.sro.groups.get(spec.group_id)
                base = state.store.get(key, spec.default) if state is not None else spec.default
            fence.overlay[key] = (base or 0) + amount
            fence.writes_fenced += 1
            return
        if self._ctx is None:
            self.sro.initiate_writes(
                [(spec, key, FetchAdd(amount))], None, None, origin="control"
            )
            return
        self._ctx.write_set.append((spec, key, FetchAdd(amount)))

    def register_increment(self, spec: RegisterSpec, key: Any, amount: int) -> int:
        self._note_state_op(self._m_writes)
        if self.level_of(spec) is not Consistency.EWO:
            raise TypeError(
                f"increment() requires an EWO counter group; {spec.name!r} is "
                f"{spec.consistency.value} (strong registers have overwrite semantics)"
            )
        value = self.ewo.increment(spec, key, amount)
        history = self.deployment.history
        if history is not None:
            history.record_instant(
                "write", spec.group_id, key, value, self.switch.name, self.sim.now
            )
        return value

    def register_set_add(self, spec: RegisterSpec, key: Any, element: Any) -> None:
        self._note_state_op(self._m_writes)
        self.ewo.set_add(spec, key, element)
        history = self.deployment.history
        if history is not None:
            history.record_instant(
                "write", spec.group_id, key, ("add", element), self.switch.name, self.sim.now
            )

    def register_set_remove(self, spec: RegisterSpec, key: Any, element: Any) -> bool:
        self._note_state_op(self._m_writes)
        removed = self.ewo.set_remove(spec, key, element)
        history = self.deployment.history
        if history is not None and removed:
            history.record_instant(
                "write", spec.group_id, key, ("rm", element), self.switch.name, self.sim.now
            )
        return removed

    def register_set_contains(self, spec: RegisterSpec, key: Any, element: Any) -> bool:
        if self._accessprof_on:
            self._accessprof.on_read(spec.group_id, key, self.switch.name, self.sim.now)
        return self.ewo.set_contains(spec, key, element)

    def register_peek(self, spec: RegisterSpec, key: Any, default: Any) -> Any:
        if self._accessprof_on:
            self._accessprof.on_read(
                spec.group_id, key, self.switch.name, self.sim.now, peek=True
            )
        fence = self._relevel_fences.get(spec.group_id)
        if fence is not None and key in fence.overlay:
            return fence.overlay[key]
        if self.level_of(spec) is Consistency.EWO:
            return self.ewo.read(spec, key, default)
        state = self.sro.groups.get(spec.group_id)
        if state is None:
            # Mid-switch window: the chain engine is already torn down
            # here but the broadcast engine's command hasn't landed yet.
            return default if default is not None else spec.default
        return state.store.get(key, default if default is not None else spec.default)

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def on_write_initiated(self, spec: RegisterSpec, key: Any, value: Any, token: WriteToken) -> None:
        history = self.deployment.history
        if history is not None:
            history.begin(
                token, "write", spec.group_id, key, value, self.switch.name, self.sim.now
            )

    def on_write_committed(self, spec: RegisterSpec, key: Any, ack: Any) -> None:
        history = self.deployment.history
        if history is not None:
            history.complete(ack.token, self.sim.now)
        for listener in self.deployment.commit_listeners:
            listener(self.switch.name, spec, key, ack)


class SwiShmemDeployment:
    """A set of switches acting as one logical NF processor."""

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        switches: List[PisaSwitch],
        address_book: Optional[AddressBook] = None,
        sync_period: float = DEFAULT_SYNC_PERIOD,
        clock_skew: float = DEFAULT_CLOCK_SKEW,
        tracer: Tracer = NULL_TRACER,
        record_history: bool = False,
        detection: str = "heartbeat",
        heartbeat_period: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        controller_replicas: int = 1,
        lease_duration: Optional[float] = None,
        flight_recorder: FlightRecorder = NULL_FLIGHT_RECORDER,
        access_profiler: AccessProfiler = NULL_ACCESS_PROFILER,
        slo_monitor: SLOMonitor = NULL_SLO_MONITOR,
    ) -> None:
        if not switches:
            raise ValueError("a deployment needs at least one switch")
        self.sim = sim
        self.topo = topo
        self.rng = topo.rng
        self.switches = list(switches)
        self.switch_names = [s.name for s in switches]
        self.sync_period = sync_period
        self.clock_skew = clock_skew
        self.tracer = tracer
        # Observability hooks (repro.obs).  Engines cache each hook and
        # its enabled flag at construction, so these are exposed as
        # read-only properties: assigning them after construction would
        # be silently ignored by every engine.  Swapping hooks on a live
        # deployment must go through :meth:`rebind_observability`, which
        # re-binds every cached copy.
        self._metrics = metrics
        self._flight_recorder = flight_recorder
        self._access_profiler = access_profiler
        self._slo_monitor = slo_monitor
        self.address_book = address_book if address_book is not None else AddressBook()
        self.routing = RoutingTable(topo)
        self.multicast = MulticastRegistry()
        self.history: Optional[HistoryRecorder] = HistoryRecorder() if record_history else None
        #: Hooks invoked as ``listener(writer, spec, key, ack)`` whenever
        #: a strong write commits at its writer — the chaos invariant
        #: monitors subscribe here to learn what "acked" means.
        self.commit_listeners: List[Any] = []
        #: Section 9 extension: directory service for partial replication
        #: (None = full replication everywhere, the paper's base design).
        self.directory = None
        #: Anti-entropy (repro.protocols.antientropy): chaos faults log
        #: one DivergenceEvent per injected silent divergence here; the
        #: scrubber stamps detection and heal times and the invariant
        #: suite enforces the heal bound.
        self.divergence_log: List[Any] = []
        #: The deployment-wide ScrubCoordinator, once started.
        self.scrubber = None
        self._group_ids = itertools.count(1)
        self.specs: Dict[int, RegisterSpec] = {}
        self._spec_names: Dict[str, RegisterSpec] = {}
        self.chains: Dict[int, ChainDescriptor] = {}
        self._clock_offsets: Dict[str, float] = {}
        skew_stream = self.rng.stream("clock-skew")
        for switch in self.switches:
            self._clock_offsets[switch.name] = skew_stream.uniform(-clock_skew, clock_skew)
        # Wire the shared fabric services into each switch.
        for switch in self.switches:
            switch.routing = self.routing
            switch.address_book = self.address_book
            switch.multicast = self.multicast
        if metrics.enabled:
            for switch in self.switches:
                switch.bind_metrics(metrics)
            for link in self.topo.links:
                link.bind_metrics(metrics)
        # Late imports to avoid a protocols <-> core cycle at module load.
        from repro.protocols.controller import (
            DEFAULT_HEARTBEAT_PERIOD,
            DEFAULT_HEARTBEAT_TIMEOUT,
        )
        from repro.protocols.election import ControllerCluster
        from repro.protocols.failover import FailoverCoordinator

        self.managers: Dict[str, SwiShmemManager] = {
            switch.name: SwiShmemManager(switch, self) for switch in self.switches
        }
        self.failover = FailoverCoordinator(self)
        self.controller = ControllerCluster(
            self,
            replicas=controller_replicas,
            lease=lease_duration,
            detection=detection,
            heartbeat_period=(
                heartbeat_period
                if heartbeat_period is not None
                else DEFAULT_HEARTBEAT_PERIOD
            ),
            heartbeat_timeout=(
                heartbeat_timeout
                if heartbeat_timeout is not None
                else DEFAULT_HEARTBEAT_TIMEOUT
            ),
        )
        # Runtime consistency re-leveling.  Deployment-scoped (not
        # per-controller-replica) so an in-progress handoff survives a
        # leader takeover; only command *sending* is leader-gated.
        from repro.protocols.releveling import RelevelingCoordinator

        self.releveler = RelevelingCoordinator(self)

    # ------------------------------------------------------------------
    # Observability hooks (read-only; swap via rebind_observability)
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """Live-telemetry registry (repro.obs)."""
        return self._metrics

    @metrics.setter
    def metrics(self, value: Any) -> None:
        raise AttributeError(
            "deployment.metrics is cached by every engine at construction; "
            "late assignment would be silently ignored — use "
            "deployment.rebind_observability(metrics=...) instead"
        )

    @property
    def flight_recorder(self) -> FlightRecorder:
        """Causal flight recorder (repro.obs.flightrec).  Trace
        *stamping* happens regardless — it is digest-neutral — only span
        recording is gated on this."""
        return self._flight_recorder

    @flight_recorder.setter
    def flight_recorder(self, value: Any) -> None:
        raise AttributeError(
            "deployment.flight_recorder is cached by every engine at "
            "construction; late assignment would be silently ignored — use "
            "deployment.rebind_observability(flight_recorder=...) instead"
        )

    @property
    def access_profiler(self) -> AccessProfiler:
        """Access-pattern profiler (repro.obs.accessprof)."""
        return self._access_profiler

    @access_profiler.setter
    def access_profiler(self, value: Any) -> None:
        raise AttributeError(
            "deployment.access_profiler is cached by every engine at "
            "construction; late assignment would be silently ignored — use "
            "deployment.rebind_observability(access_profiler=...) instead"
        )

    @property
    def slo_monitor(self) -> SLOMonitor:
        """Live SLO monitor (repro.obs.slo).  Evaluation is lazy off the
        sim clock the hooks carry — digest-neutral."""
        return self._slo_monitor

    @slo_monitor.setter
    def slo_monitor(self, value: Any) -> None:
        raise AttributeError(
            "deployment.slo_monitor is cached by every engine at "
            "construction; late assignment would be silently ignored — use "
            "deployment.rebind_observability(slo_monitor=...) instead"
        )

    def rebind_observability(
        self,
        metrics: Optional[MetricsRegistry] = None,
        flight_recorder: Optional[FlightRecorder] = None,
        access_profiler: Optional[AccessProfiler] = None,
        slo_monitor: Optional[SLOMonitor] = None,
    ) -> None:
        """Swap observability hooks on a live deployment.

        Engines cache every hook (and its enabled flag) at construction
        for hot-path cheapness; this is the one sanctioned way to attach
        or replace a hook afterwards — it updates the deployment's
        references and then re-binds every cached copy: switches, links,
        managers, protocol engines, scrub agents, the scrub coordinator,
        controller replicas, and the re-leveling coordinator.
        """
        if metrics is not None:
            self._metrics = metrics
            if metrics.enabled:
                for switch in self.switches:
                    switch.bind_metrics(metrics)
                for link in self.topo.links:
                    link.bind_metrics(metrics)
        if flight_recorder is not None:
            self._flight_recorder = flight_recorder
        if access_profiler is not None:
            self._access_profiler = access_profiler
            if access_profiler.enabled:
                for spec in self.specs.values():
                    access_profiler.describe_group(spec)
        if slo_monitor is not None:
            self._slo_monitor = slo_monitor
        for manager in self.managers.values():
            manager._bind_observability()
            manager.sro._bind_observability()
            manager.ewo._bind_observability()
            manager.scrub._bind_observability()
        if self.scrubber is not None:
            self.scrubber._bind_observability()
        self.controller.rebind_observability()
        self.releveler._bind_observability()

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def node_id(self, switch_name: str) -> int:
        return self.switch_names.index(switch_name)

    def clock_offset(self, switch_name: str) -> float:
        return self._clock_offsets.get(switch_name, 0.0)

    def sync_phase(self, switch_name: str, group_id: int) -> float:
        """Stagger each switch's first sync within one period."""
        stream = self.rng.stream(f"sync-phase:{switch_name}:{group_id}")
        return stream.uniform(0.1, 1.0) * self.sync_period

    def manager(self, switch_name: str) -> SwiShmemManager:
        return self.managers[switch_name]

    # ------------------------------------------------------------------
    # Register group declaration
    # ------------------------------------------------------------------
    def declare(self, spec: RegisterSpec) -> RegisterSpec:
        """Declare a register group and replicate it on every switch."""
        if spec.name in self._spec_names:
            raise ValueError(f"register group {spec.name!r} already declared")
        spec.group_id = next(self._group_ids)
        self.specs[spec.group_id] = spec
        self._spec_names[spec.name] = spec
        if self.access_profiler.enabled:
            self.access_profiler.describe_group(spec)
        chain: Optional[ChainDescriptor] = None
        if spec.consistency is Consistency.EWO:
            self.multicast.create(spec.group_id, members=self.switch_names)
        else:
            chain = ChainDescriptor(
                chain_id=spec.group_id, members=tuple(self.switch_names)
            )
            self.chains[spec.group_id] = chain
        for manager in self.managers.values():
            manager.add_group(spec, chain, list(self.switch_names))
        return spec

    def spec_by_name(self, name: str) -> RegisterSpec:
        return self._spec_names[name]

    def attach_directory(self, directory) -> None:
        """Enable the section 9 directory service for groups declared
        with ``partial_replication=True``.  The directory's switch set
        must match this deployment's."""
        unknown = set(directory.all_switches) - set(self.switch_names)
        if unknown:
            raise ValueError(f"directory names unknown switches: {sorted(unknown)}")
        self.directory = directory

    def handle(self, switch_name: str, spec: RegisterSpec) -> RegisterHandle:
        return self.managers[switch_name].handle(spec)

    # ------------------------------------------------------------------
    # Chain reconfiguration (driven by the controller / failover)
    # ------------------------------------------------------------------
    def install_chain(self, chain: ChainDescriptor) -> None:
        """Push a new chain descriptor version to all live managers."""
        self.chains[chain.chain_id] = chain
        for manager in self.managers.values():
            if manager.switch.failed:
                continue
            if chain.chain_id in manager.sro.groups:
                manager.sro.set_chain(chain.chain_id, chain)

    # ------------------------------------------------------------------
    # NF installation
    # ------------------------------------------------------------------
    def install_nf(self, nf_class: Type, **kwargs: Any) -> List[Any]:
        """Declare the NF's register groups and instantiate it on every switch.

        ``nf_class.build_specs(**kwargs)`` returns the NF's
        :class:`RegisterSpec` list; the class is then constructed per
        switch as ``nf_class(manager, handles, **kwargs)`` where
        ``handles`` maps spec name -> :class:`RegisterHandle`.
        """
        specs = nf_class.build_specs(**kwargs)
        for spec in specs:
            self.declare(spec)
        instances = []
        for switch in self.switches:
            manager = self.managers[switch.name]
            handles = {spec.name: manager.handle(spec) for spec in specs}
            nf = nf_class(manager, handles, **kwargs)
            manager.install_nf(nf)
            instances.append(nf)
        return instances

    # ------------------------------------------------------------------
    # Experiment conveniences
    # ------------------------------------------------------------------
    def enable_int(self, max_hops: int = 16) -> None:
        """Turn on INT hop stamping at every switch (repro.obs.inttel)."""
        for switch in self.switches:
            switch.int_enabled = True
            switch.int_max_hops = max_hops

    def fail_switch(self, name: str) -> None:
        """Fail-stop a switch (the controller will detect it)."""
        self.topo.fail_node(name)

    def start_scrubbing(self, period: Optional[float] = None, **kwargs: Any):
        """Start the anti-entropy scrub loop (idempotent).

        ``kwargs`` pass through to
        :class:`~repro.protocols.antientropy.ScrubCoordinator`
        (``buckets``, ``confirm_rounds``, ``heal_bound``).
        """
        from repro.protocols.antientropy import DEFAULT_SCRUB_PERIOD, ScrubCoordinator

        if self.scrubber is not None:
            return self.scrubber
        self.scrubber = ScrubCoordinator(
            self,
            period=period if period is not None else DEFAULT_SCRUB_PERIOD,
            **kwargs,
        )
        self.scrubber.start()
        return self.scrubber

    def shutdown(self) -> None:
        """Tear the deployment down: stop the controller cluster (all
        replicas, lease timers, heartbeat generators) and every periodic
        EWO sync generator, so that once in-flight events drain the sim
        queue is empty.  The deployment stays inspectable afterwards."""
        self.controller.stop()
        if self.scrubber is not None:
            self.scrubber.stop()
        for manager in self.managers.values():
            for generator in manager._sync_generators.values():
                generator.stop()
            manager._sync_generators.clear()

    def ewo_states(self, spec: RegisterSpec) -> List[Dict[Any, Any]]:
        """Every live replica's readable EWO state (convergence checks)."""
        return [
            manager.ewo.local_state(spec.group_id)
            for manager in self.managers.values()
            if not manager.switch.failed and spec.group_id in manager.ewo.groups
        ]

    def sro_stores(self, spec: RegisterSpec) -> List[Dict[Any, Any]]:
        return [
            dict(manager.sro.groups[spec.group_id].store)
            for manager in self.managers.values()
            if not manager.switch.failed and spec.group_id in manager.sro.groups
        ]

    def summary(self) -> Dict[str, Any]:
        """A deployment-wide operational snapshot.

        Aggregates the forwarding-plane, control-plane, and per-group
        protocol counters across every switch — what an operator
        dashboard for this deployment would show, and what examples and
        experiments print when asked "what did the system actually do?".
        """
        switches = {}
        for name, manager in self.managers.items():
            switch = manager.switch
            switches[name] = {
                "failed": switch.failed,
                "forwarding": switch.stats.as_dict(),
                "cpu_ops": switch.control.ops_executed,
                "cpu_time": switch.control.cpu_time_used,
                "buffered_packets": switch.control.buffered_count,
                "memory_used_bytes": switch.memory.used_bytes,
                "memory_utilization": switch.memory.utilization(),
            }
        groups = {}
        for group_id, spec in sorted(self.specs.items()):
            per_switch = {}
            for name, manager in self.managers.items():
                if manager.level_of(spec) is Consistency.EWO:
                    if group_id in manager.ewo.groups:
                        per_switch[name] = manager.ewo.stats_for(group_id).as_dict()
                elif group_id in manager.sro.groups:
                    per_switch[name] = manager.sro.stats_for(group_id).as_dict()
            totals: Dict[str, float] = {}
            for stats in per_switch.values():
                for key, value in stats.items():
                    totals[key] = totals.get(key, 0) + value
            groups[spec.name] = {
                "consistency": spec.consistency.value,
                "totals": totals,
                "per_switch": per_switch,
            }
        return {
            "switches": switches,
            "groups": groups,
            "failures": len(self.controller.failures),
            "recoveries": len(self.controller.recoveries),
            "replication_bytes_on_wire": self.topo.total_bytes_sent(),
        }
