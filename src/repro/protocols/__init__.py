"""Replication protocols: SRO/ERO chain, EWO broadcast+sync, failover, controller."""

from repro.protocols.controller import CentralController, FailureEvent, RecoveryEvent
from repro.protocols.ewo import EwoEngine, EwoGroupState, EwoStats
from repro.protocols.failover import FailoverCoordinator, SnapshotTransfer
from repro.protocols.messages import (
    ChainUpdate,
    EwoEntry,
    EwoSync,
    EwoUpdate,
    SnapshotAck,
    SnapshotWrite,
    WriteAck,
    WriteRequest,
    WriteToken,
)
from repro.protocols.sro import SroEngine, SroGroupState, SroStats

__all__ = [
    "CentralController",
    "FailureEvent",
    "RecoveryEvent",
    "EwoEngine",
    "EwoGroupState",
    "EwoStats",
    "FailoverCoordinator",
    "SnapshotTransfer",
    "ChainUpdate",
    "EwoEntry",
    "EwoSync",
    "EwoUpdate",
    "SnapshotAck",
    "SnapshotWrite",
    "WriteAck",
    "WriteRequest",
    "WriteToken",
    "SroEngine",
    "SroGroupState",
    "SroStats",
]
