"""Live observability: metrics registry, INT telemetry, sim profiler.

See docs/OBSERVABILITY.md for the full guide.  Quick start::

    from repro.obs import MetricsRegistry, render_registry

    registry = MetricsRegistry()
    deployment = SwiShmemDeployment(sim, topo, nodes, metrics=registry)
    sim.run(until=0.1)
    print(render_registry(registry))
    registry.write_jsonl("metrics.jsonl")
"""

from repro.obs.accessprof import (
    AccessProfiler,
    GroupProfile,
    KeyProfile,
    NULL_ACCESS_PROFILER,
    NullAccessProfiler,
    WindowedCount,
)
from repro.obs.advisor import ConsistencyAdvisor, GroupAdvice
from repro.obs.causal import CausalClock, TraceContext
from repro.obs.critpath import (
    CAUSES,
    CriticalPathAnalyzer,
    CritPathReport,
    DEFAULT_PIPELINE_LATENCY,
    HopAttribution,
    Segment,
    WriteAttribution,
)
from repro.obs.dashboard import (
    render,
    render_access_profile,
    render_critpath,
    render_dashboard,
    render_registry,
    render_slo,
)
from repro.obs.flightrec import (
    DEFAULT_MAX_SPANS,
    FlightRecorder,
    NULL_FLIGHT_RECORDER,
    Span,
    TraceQuery,
)
from repro.obs.inttel import (
    INT_HOP_BYTES,
    INT_SHIM_BYTES,
    IntHopRecord,
    IntSink,
    IntTelemetry,
    decode_path,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    load_jsonl,
    registry_from_records,
)
from repro.obs.profiler import HandlerStats, SimProfiler
from repro.obs.slo import (
    NULL_SLO_MONITOR,
    NullSLOMonitor,
    SLOMonitor,
    SLOObjective,
    parse_objective,
)

__all__ = [
    "AccessProfiler",
    "GroupProfile",
    "KeyProfile",
    "WindowedCount",
    "NullAccessProfiler",
    "NULL_ACCESS_PROFILER",
    "ConsistencyAdvisor",
    "GroupAdvice",
    "CAUSES",
    "CriticalPathAnalyzer",
    "CritPathReport",
    "DEFAULT_PIPELINE_LATENCY",
    "HopAttribution",
    "Segment",
    "WriteAttribution",
    "SLOMonitor",
    "SLOObjective",
    "NullSLOMonitor",
    "NULL_SLO_MONITOR",
    "parse_objective",
    "render_access_profile",
    "render_critpath",
    "render_dashboard",
    "render_slo",
    "CausalClock",
    "TraceContext",
    "Span",
    "FlightRecorder",
    "TraceQuery",
    "NULL_FLIGHT_RECORDER",
    "DEFAULT_MAX_SPANS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BOUNDS",
    "load_jsonl",
    "registry_from_records",
    "render",
    "render_registry",
    "IntHopRecord",
    "IntTelemetry",
    "IntSink",
    "decode_path",
    "INT_SHIM_BYTES",
    "INT_HOP_BYTES",
    "HandlerStats",
    "SimProfiler",
]
