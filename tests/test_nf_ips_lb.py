"""Tests for the IPS and L4 load balancer NFs."""

from __future__ import annotations

import pytest

from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.nf.ips import IpsNF, packet_signature
from repro.nf.loadbalancer import LoadBalancerNF

from tests.nfworld import build_nf_world

VIP = "100.0.0.100"


class TestPacketSignature:
    def test_stable_for_same_content(self):
        a = make_udp_packet("1.1.1.1", "2.2.2.2", 10, 53, payload_size=100)
        b = make_udp_packet("3.3.3.3", "4.4.4.4", 99, 53, payload_size=100)
        assert packet_signature(a) == packet_signature(b)  # content-based

    def test_digest_changes_signature(self):
        a = make_udp_packet("1.1.1.1", "2.2.2.2", 10, 53, payload_size=100)
        b = make_udp_packet("1.1.1.1", "2.2.2.2", 10, 53, payload_size=100)
        b.payload_digest = 777
        assert packet_signature(a) != packet_signature(b)

    def test_non_ip_packet_zero(self):
        from repro.net.packet import Packet

        assert packet_signature(Packet()) == 0


def ips_world(**kwargs):
    world = build_nf_world(**kwargs)
    instances = world.deployment.install_nf(IpsNF, block_threshold=3)
    return world, instances


def malicious_packet(src, dst, digest=666):
    packet = make_udp_packet(src, dst, 4000, 53, payload_size=64)
    packet.payload_digest = digest
    return packet


class TestIps:
    def test_benign_traffic_passes(self):
        world, instances = ips_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_udp_packet(client.ip, server.ip, 1000, 53))
        world.sim.run(until=0.05)
        assert len(server.received) == 1

    def test_signature_match_drops_packet(self):
        world, instances = ips_world()
        client, server = world.clients[0], world.servers[0]
        # operator installs the signature on one switch's control plane
        instances[0].add_signature(packet_signature(malicious_packet(client.ip, server.ip)))
        world.sim.run(until=0.05)  # let the ERO chain replicate it
        client.inject(malicious_packet(client.ip, server.ip))
        world.sim.run(until=0.1)
        assert server.received == []
        assert sum(i.signature_hits for i in instances) == 1

    def test_signature_replicates_to_all_switches(self):
        world, instances = ips_world()
        signature = 0xDEAD
        instances[2].add_signature(signature)
        world.sim.run(until=0.05)
        spec = world.deployment.spec_by_name("ips_signatures")
        assert all(store.get(signature) is True for store in world.deployment.sro_stores(spec))

    def test_source_blocked_after_threshold(self):
        world, instances = ips_world()
        client, server = world.clients[0], world.servers[0]
        instances[0].add_signature(packet_signature(malicious_packet(client.ip, server.ip)))
        world.sim.run(until=0.05)
        for _ in range(4):
            client.inject(malicious_packet(client.ip, server.ip))
        world.sim.run(until=0.2)
        # after 3 matches the source is blocked wholesale: even benign
        # traffic from it is dropped
        client.inject(make_udp_packet(client.ip, server.ip, 1000, 53))
        world.sim.run(until=0.3)
        assert server.received == []
        assert sum(i.blocked_packets for i in instances) >= 1

    def test_match_counts_shared_across_switches(self):
        world, instances = ips_world()
        client = world.clients[0]
        spec = world.deployment.spec_by_name("ips_matches")
        manager = world.deployment.manager(world.cluster[0].name)
        # seed matches on two different switches directly
        world.deployment.manager(world.cluster[0].name).register_increment(spec, client.ip, 2)
        world.deployment.manager(world.cluster[1].name).register_increment(spec, client.ip, 2)
        world.sim.run(until=0.05)
        # every switch now sees 4 >= threshold 3
        for name in world.deployment.switch_names:
            assert world.deployment.manager(name).ewo.local_state(spec.group_id)[client.ip] == 4

    def test_remove_signature(self):
        world, instances = ips_world()
        client, server = world.clients[0], world.servers[0]
        sig = packet_signature(malicious_packet(client.ip, server.ip))
        instances[0].add_signature(sig)
        world.sim.run(until=0.05)
        instances[0].remove_signature(sig)
        world.sim.run(until=0.1)
        client.inject(malicious_packet(client.ip, server.ip))
        world.sim.run(until=0.15)
        assert len(server.received) == 1


def lb_world(shared_state=True, **kwargs):
    world = build_nf_world(**kwargs)
    world.book.register(VIP, "egress")
    instances = world.deployment.install_nf(
        LoadBalancerNF, vip=VIP, dips=world.server_ips(), shared_state=shared_state
    )
    return world, instances


class TestLoadBalancer:
    def test_syn_assigns_dip_and_delivers(self):
        world, instances = lb_world()
        client = world.clients[0]
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        delivered = [s for s in world.servers if s.received]
        assert len(delivered) == 1
        assert sum(i.new_connections for i in instances) == 1

    def test_subsequent_packets_follow_assignment(self):
        world, instances = lb_world()
        client = world.clients[0]
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        for _ in range(5):
            client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, payload_size=10))
        world.sim.run(until=0.3)
        delivered = [s for s in world.servers if s.received]
        assert len(delivered) == 1  # per-connection consistency
        assert len(delivered[0].received) == 6

    def test_connections_spread_over_dips(self):
        world, instances = lb_world()
        client = world.clients[0]
        for port in range(5000, 5008):
            client.inject(make_tcp_packet(client.ip, VIP, port, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.3)
        used = [s for s in world.servers if s.received]
        assert len(used) >= 2

    def test_non_vip_traffic_untouched(self):
        world, instances = lb_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 5000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        assert len(server.received) == 1
        assert sum(i.new_connections for i in instances) == 0

    def test_mid_connection_packet_without_mapping_dropped(self):
        world, instances = lb_world()
        client = world.clients[0]
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, payload_size=10))
        world.sim.run(until=0.1)
        assert all(not s.received for s in world.servers)
        assert sum(i.stats.dropped for i in instances) == 1

    def test_requires_dips(self):
        world = build_nf_world()
        with pytest.raises(ValueError):
            world.deployment.install_nf(LoadBalancerNF, vip=VIP, dips=[])

    def test_assignment_survives_switch_failure(self):
        world, instances = lb_world()
        client = world.clients[0]
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        target_before = next(s for s in world.servers if s.received)
        victim = world.cluster[0].name
        world.deployment.controller.note_failure_time(victim)
        world.deployment.fail_switch(victim)
        world.sim.run(until=0.15)
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, payload_size=10))
        world.sim.run(until=0.3)
        assert len(target_before.received) == 2  # same DIP after the failure

    def test_sharded_baseline_has_no_shared_registers(self):
        world, instances = lb_world(shared_state=False)
        assert "lb_connections" not in world.deployment._spec_names
        client = world.clients[0]
        client.inject(make_tcp_packet(client.ip, VIP, 5000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        assert any(s.received for s in world.servers)
