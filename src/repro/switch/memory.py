"""Data-plane memory accounting.

The paper leans hard on memory scarcity: "~10 MB state available from
the data-plane" (section 1) and "the small switch memory is split
between pipeline stages" (section 2).  Every stateful object a program
allocates — register arrays, tables, meters, counters, and SwiShmem's
own protocol state (pending bits, sequence numbers, version vectors) —
charges bytes against a :class:`MemoryBudget`.  Exceeding the budget
raises :class:`OutOfSwitchMemory`, which is exactly the failure mode the
pending-bit-sharing ablation (experiment A1) explores.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["MemoryBudget", "OutOfSwitchMemory", "DEFAULT_SWITCH_MEMORY_BYTES"]

#: The paper's ~10 MB figure for data-plane accessible state.
DEFAULT_SWITCH_MEMORY_BYTES = 10 * 1024 * 1024


class OutOfSwitchMemory(MemoryError):
    """An allocation would exceed the switch's data-plane memory budget."""

    def __init__(self, requested: int, available: int, owner: str) -> None:
        super().__init__(
            f"allocation of {requested} bytes for {owner!r} exceeds remaining "
            f"switch memory ({available} bytes available)"
        )
        self.requested = requested
        self.available = available
        self.owner = owner


class MemoryBudget:
    """Tracks data-plane memory allocations on one switch."""

    def __init__(self, capacity_bytes: int = DEFAULT_SWITCH_MEMORY_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ValueError("switch memory capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._allocations: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, owner: str, nbytes: int) -> None:
        """Charge ``nbytes`` to ``owner``; raises :class:`OutOfSwitchMemory`."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        if nbytes > self.free_bytes:
            raise OutOfSwitchMemory(nbytes, self.free_bytes, owner)
        self._allocations[owner] = self._allocations.get(owner, 0) + nbytes

    def release(self, owner: str) -> int:
        """Release everything charged to ``owner``; returns bytes freed."""
        return self._allocations.pop(owner, 0)

    def usage_by_owner(self) -> List[Tuple[str, int]]:
        """(owner, bytes) pairs, largest first — the memory map."""
        return sorted(self._allocations.items(), key=lambda kv: (-kv[1], kv[0]))

    def utilization(self) -> float:
        """Fraction of the budget in use, in [0, 1]."""
        return self.used_bytes / self.capacity_bytes
