"""Positive-negative counter (PN-Counter) CRDT.

Paper section 6.2: "Further extensions support decrement operations."
A PN-Counter is the standard such extension: two G-Counter vectors, one
accumulating increments and one accumulating decrements; the value is
their difference.  NFs use this for state like "currently open
connections" where entries are both added and removed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crdt.gcounter import GCounter

__all__ = ["PNCounter"]


class PNCounter:
    """State-based counter supporting increment and decrement."""

    def __init__(self, num_replicas: int, my_slot: int, slot_width_bytes: int = 8) -> None:
        self._positive = GCounter(num_replicas, my_slot, slot_width_bytes)
        self._negative = GCounter(num_replicas, my_slot, slot_width_bytes)
        self.num_replicas = num_replicas
        self.my_slot = my_slot

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("use decrement() for negative deltas")
        self._positive.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("decrement amount must be non-negative")
        self._negative.increment(amount)

    def value(self) -> int:
        return self._positive.value() - self._negative.value()

    def merge(self, other_state: Tuple[List[int], List[int]]) -> bool:
        """Merge a remote (positive, negative) vector pair."""
        positive, negative = other_state
        changed_p = self._positive.merge(positive)
        changed_n = self._negative.merge(negative)
        return changed_p or changed_n

    def state(self) -> Tuple[List[int], List[int]]:
        """(positive, negative) vectors — the on-wire state."""
        return (self._positive.vector(), self._negative.vector())

    @property
    def state_bytes(self) -> int:
        return self._positive.state_bytes + self._negative.state_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PNCounter):
            return NotImplemented
        return self.state() == other.state()

    def __repr__(self) -> str:
        return f"<PNCounter slot={self.my_slot} value={self.value()}>"
