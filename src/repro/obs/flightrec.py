"""Flight recorder: a bounded ring of causal spans + post-mortem engine.

Protocol code stamps :class:`~repro.obs.causal.TraceContext` objects on
messages unconditionally (pure counter arithmetic, digest-neutral); the
*recording* of spans is what this module gates.  A disabled recorder
(:data:`NULL_FLIGHT_RECORDER`, the default everywhere) drops every
span in a single attribute check, mirroring the ``NULL_REGISTRY`` /
``NULL_TRACER`` idiom.

The recorder answers two questions the aggregate telemetry of PR 2
cannot:

* **"what happened to this write?"** — :meth:`FlightRecorder.span_tree`
  reconstructs the causally ordered span tree for a trace_id or a
  ``(group, key)`` pair, and :meth:`render_timeline` prints it as a
  human-readable timeline (who held the pending bit, which epoch fenced
  which command, where a chain hop was lost);
* **"did A happen before B?"** — :class:`TraceQuery` exposes
  ``assert_happens_before`` / ``span_count`` / ``max_chain_depth`` so
  tests and ``bench_chaos_soak`` can assert causal structure directly.

Like :class:`~repro.sim.trace.Tracer`, the ring is bounded
(``max_records``) and counts ``evictions``; ``bind_metrics`` exports
the eviction count as a gauge so truncation shows up in bench sidecars
instead of silently eating the start of a post-mortem.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.causal import TraceContext
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = ["Span", "FlightRecorder", "TraceQuery", "NULL_FLIGHT_RECORDER"]

#: Default ring capacity — matches the order of magnitude of
#: ``Tracer``'s default and comfortably holds a chaos-soak's hot keys.
DEFAULT_MAX_SPANS = 65536


@dataclass
class Span:
    """One recorded causal event.

    ``name`` is a dotted event identifier (``sro.chain.apply``,
    ``controller.command.fenced``, ...); ``attrs`` carries the
    event-specific detail the timeline renderer prints (seq, slot,
    epoch, next_hop, ...).
    """

    context: TraceContext
    name: str
    node: str
    time: float
    group: Optional[int] = None
    key: Any = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def parent_id(self) -> Optional[str]:
        return self.context.parent_id

    @property
    def lamport(self) -> int:
        return self.context.lamport

    def describe(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        target = ""
        if self.group is not None:
            target = f" group={self.group}"
            if self.key is not None:
                target += f" key={self.key}"
        return f"{self.name}{target}{(' ' + extras) if extras else ''}"


class FlightRecorder:
    """Bounded ring of spans with causal-tree reconstruction.

    Queries scan the ring (they run at post-mortem time, not on the hot
    path), so there are no secondary indexes to keep consistent under
    eviction.
    """

    enabled = True

    def __init__(self, max_records: int = DEFAULT_MAX_SPANS) -> None:
        self.max_records = max_records
        self.spans: Deque[Span] = deque(maxlen=max_records)
        self.evictions = 0
        self.recorded = 0

    # -- recording ------------------------------------------------------

    def record(
        self,
        context: Optional[TraceContext],
        name: str,
        node: str,
        time: float,
        group: Optional[int] = None,
        key: Any = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Append one span; silently drops untraced (None-context) events."""
        if not self.enabled or context is None:
            return None
        if self.max_records and len(self.spans) == self.max_records:
            self.evictions += 1
        span = Span(context, name, node, time, group=group, key=key, attrs=attrs)
        self.spans.append(span)
        self.recorded += 1
        return span

    def bind_metrics(self, metrics: MetricsRegistry = NULL_REGISTRY, node: str = "obs") -> None:
        """Register eviction/occupancy gauges (call before snapshotting)."""
        if not metrics.enabled:
            return
        metrics.gauge("flightrec.evictions", node).set(self.evictions)
        metrics.gauge("flightrec.spans", node).set(len(self.spans))
        metrics.gauge("flightrec.recorded", node).set(self.recorded)

    # -- selection ------------------------------------------------------

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        return self._ordered([s for s in self.spans if s.trace_id == trace_id])

    def traces_for_key(self, group: int, key: Any = None) -> List[str]:
        """trace_ids that ever touched ``(group, key)``, in first-seen
        order.  ``key=None`` is a wildcard: every trace touching the
        group (per-slot invariant breaches know the group but not the
        key)."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            if span.group != group or span.trace_id in seen:
                continue
            if key is not None and span.key != key:
                continue
            seen[span.trace_id] = None
        return list(seen)

    def spans_for_key(self, group: int, key: Any = None) -> List[Span]:
        """All spans of all traces touching ``(group, key)``, causal order."""
        traces = set(self.traces_for_key(group, key))
        return self._ordered([s for s in self.spans if s.trace_id in traces])

    @staticmethod
    def _ordered(spans: List[Span]) -> List[Span]:
        # Lamport first (the causal order), then simulated time and the
        # deterministic span id as tie-breaks — stable across replays.
        return sorted(spans, key=lambda s: (s.lamport, s.time, s.span_id))

    # -- reconstruction -------------------------------------------------

    def span_tree(self, trace_id: str) -> Dict[Optional[str], List[Span]]:
        """Children-by-parent map for one trace (``None`` key = roots)."""
        tree: Dict[Optional[str], List[Span]] = {}
        spans = self.spans_for_trace(trace_id)
        ids = {s.span_id for s in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            tree.setdefault(parent, []).append(span)
        return tree

    def lost_hops(self, spans: Iterable[Span]) -> List[Span]:
        """Forward-spans whose announced next hop never produced a span.

        A ``*.forward`` span with a ``next_hop`` attribute promises a
        receiving-side child on that node; if the ring holds no child
        span from that node, the hop was lost in flight (or the apply
        was dropped by a fault) — exactly the "where did the chain hop
        die" question a post-mortem needs answered.
        """
        spans = list(spans)
        lost = []
        for span in spans:
            hop = span.attrs.get("next_hop")
            if hop is None:
                continue
            delivered = any(
                other.parent_id == span.span_id and other.node == hop for other in spans
            )
            if not delivered:
                lost.append(span)
        return lost

    # -- rendering ------------------------------------------------------

    def render_timeline(
        self,
        trace_id: Optional[str] = None,
        group: Optional[int] = None,
        key: Any = None,
        limit: int = 120,
    ) -> str:
        """A human-readable, causally ordered timeline.

        Select either one trace (``trace_id``) or every trace touching
        a register (``group`` + ``key``).  Each line shows simulated
        time, Lamport clock, node, depth-indented event, and attrs;
        lost hops are called out at the bottom.
        """
        if trace_id is not None:
            spans = self.spans_for_trace(trace_id)
            header = f"timeline for trace {trace_id}"
        elif group is not None:
            spans = self.spans_for_key(group, key)
            shown_key = "*" if key is None else key
            header = (
                f"timeline for group={group} key={shown_key}"
                f" ({len(self.traces_for_key(group, key))} trace(s))"
            )
        else:
            raise ValueError("render_timeline needs trace_id or (group, key)")
        if not spans:
            return header + "\n  (no spans recorded)"

        depths: Dict[str, int] = {}
        by_id = {s.span_id: s for s in spans}

        def depth(span: Span) -> int:
            d = depths.get(span.span_id)
            if d is None:
                parent = by_id.get(span.parent_id) if span.parent_id else None
                d = 0 if parent is None else depth(parent) + 1
                depths[span.span_id] = d
            return d

        lines = [header]
        truncated = len(spans) - limit
        for span in spans[:limit]:
            indent = "  " * depth(span)
            lines.append(
                f"  [{span.time * 1e6:10.2f}us] L{span.lamport:<4d} {span.node:<6s} "
                f"{indent}{span.describe()}  ({span.span_id})"
            )
        if truncated > 0:
            lines.append(f"  ... {truncated} more span(s) truncated")
        for span in self.lost_hops(spans):
            lines.append(
                f"  !! LOST HOP: {span.node} forwarded to {span.attrs.get('next_hop')}"
                f" at {span.time * 1e6:.2f}us ({span.describe()}) — no receive span from"
                f" {span.attrs.get('next_hop')}"
            )
        if self.evictions:
            lines.append(
                f"  (ring evicted {self.evictions} span(s); earliest history may be missing)"
            )
        return "\n".join(lines)

    def query(
        self, trace_id: Optional[str] = None, group: Optional[int] = None, key: Any = None
    ) -> "TraceQuery":
        if trace_id is not None:
            return TraceQuery(self, self.spans_for_trace(trace_id))
        if group is not None:
            return TraceQuery(self, self.spans_for_key(group, key))
        raise ValueError("query needs trace_id or (group, key)")


class TraceQuery:
    """Assertion helpers over a selected span set (tests, benchmarks)."""

    def __init__(self, recorder: FlightRecorder, spans: List[Span]) -> None:
        self.recorder = recorder
        self.spans = spans

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def span_count(self, name: Optional[str] = None) -> int:
        return len(self.spans) if name is None else len(self.named(name))

    def assert_happens_before(self, first: str, then: str) -> None:
        """Every ``first`` span must causally precede every ``then`` span."""
        a, b = self.named(first), self.named(then)
        if not a or not b:
            raise AssertionError(
                f"assert_happens_before({first!r}, {then!r}): missing spans "
                f"({len(a)} x {first}, {len(b)} x {then})"
            )
        max_a, min_b = max(s.lamport for s in a), min(s.lamport for s in b)
        if max_a >= min_b:
            detail = self._timeline()
            raise AssertionError(
                f"{first} (max L{max_a}) does not happen-before {then} (min L{min_b})\n{detail}"
            )

    def max_chain_depth(self) -> int:
        """Longest parent-link path in the selected spans (edge count)."""
        by_id = {s.span_id: s for s in self.spans}
        depths: Dict[str, int] = {}

        def depth(span: Span) -> int:
            d = depths.get(span.span_id)
            if d is None:
                parent = by_id.get(span.parent_id) if span.parent_id else None
                d = 0 if parent is None else depth(parent) + 1
                depths[span.span_id] = d
            return d

        return max((depth(s) for s in self.spans), default=0)

    def nodes(self) -> Tuple[str, ...]:
        """Distinct nodes that produced spans, in causal-order first-seen."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            if span.node not in seen:
                seen[span.node] = None
        return tuple(seen)

    def _timeline(self) -> str:
        if not self.spans:
            return "(no spans)"
        trace_ids = {s.trace_id for s in self.spans}
        if len(trace_ids) == 1:
            return self.recorder.render_timeline(trace_id=next(iter(trace_ids)))
        lines = [self.recorder.render_timeline(trace_id=t) for t in sorted(trace_ids)]
        return "\n".join(lines)


class _NullFlightRecorder(FlightRecorder):
    """Shared disabled singleton: recording is a single attribute check."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_records=0)

    def record(self, *args: Any, **kwargs: Any) -> Optional[Span]:
        return None


NULL_FLIGHT_RECORDER = _NullFlightRecorder()
