"""Soak test: the full NF stack under sustained traffic, a switch
failure, a link flap, and a recovery — global invariants must hold.

This is the closest thing to the paper's deployment story run end to
end: firewall + rate limiter + heavy-hitter detection stacked on an NF
cluster, a generator driving realistic flows throughout, and the fault
injections of section 6.3 happening mid-traffic.
"""

from __future__ import annotations

import pytest

from repro.net.headers import TcpFlags
from repro.nf.firewall import FirewallNF
from repro.nf.heavyhitter import HeavyHitterNF
from repro.nf.ratelimiter import RateLimiterNF
from repro.workload.flows import FlowGenerator

from tests.nfworld import build_nf_world


@pytest.fixture(scope="module")
def soaked_world():
    """Run the whole scenario once; the tests below assert on the wreckage."""
    world = build_nf_world(seed=3007, cluster_size=3, clients=4, servers=4)
    world.deployment.install_nf(FirewallNF)
    world.deployment.install_nf(RateLimiterNF, limit_bps=1e9)  # generous
    world.deployment.install_nf(HeavyHitterNF, threshold=10_000)  # silent
    sim = world.sim
    generator = FlowGenerator(
        world.sim,
        world.clients,
        world.server_ips(),
        world.rng,
        flow_rate=1500,
        data_packets=4,
        inter_packet_gap=2e-3,
    )
    generator.start(duration=0.15)

    victim = world.cluster[2].name

    def fail_victim():
        world.deployment.controller.note_failure_time(victim)
        world.deployment.fail_switch(victim)

    sim.schedule_at(0.05, fail_victim)

    def flap_link():
        link = world.topo.link_between(world.cluster[0].name, "egress")
        link.set_up(False)
        sim.schedule(10e-3, lambda: link.set_up(True))

    sim.schedule_at(0.08, flap_link)
    sim.schedule_at(0.11, lambda: world.deployment.controller.recover_switch(victim))
    sim.run(until=0.4)
    return world, generator, victim


class TestSoak:
    def test_traffic_flowed_throughout(self, soaked_world):
        world, generator, victim = soaked_world
        assert generator.flows_completed > 100
        delivered = sum(len(s.received) for s in world.servers)
        assert delivered > generator.flows_completed  # data + handshakes

    def test_failure_and_recovery_happened(self, soaked_world):
        world, generator, victim = soaked_world
        controller = world.deployment.controller
        assert any(e.switch == victim for e in controller.failures)
        assert any(e.switch == victim for e in controller.recoveries)
        assert controller.link_events >= 2  # down + up

    def test_conntrack_replicas_converged_after_recovery(self, soaked_world):
        world, generator, victim = soaked_world
        spec = world.deployment.spec_by_name("fw_conntrack")
        stores = world.deployment.sro_stores(spec)
        assert len(stores) == 5  # everyone is live again
        reference = stores[0]
        assert all(store == reference for store in stores)
        assert len(reference) > 50  # real state accumulated

    def test_recovered_switch_promoted_back(self, soaked_world):
        world, generator, victim = soaked_world
        spec = world.deployment.spec_by_name("fw_conntrack")
        chain = world.deployment.chains[spec.group_id]
        assert victim in chain
        assert chain.read_tail == victim  # appended last, then promoted

    def test_no_stuck_protocol_state(self, soaked_world):
        world, generator, victim = soaked_world
        for name in world.deployment.switch_names:
            manager = world.deployment.manager(name)
            assert manager.sro.outstanding_count() == 0, f"{name} leaked writes"
            assert manager.switch.control.buffered_count == 0, f"{name} leaked buffers"
            assert len(manager.sro._dp_holds) == 0, f"{name} leaked holds"

    def test_heavy_hitter_counters_consistent(self, soaked_world):
        world, generator, victim = soaked_world
        spec = world.deployment.spec_by_name("hh_counts")
        states = world.deployment.ewo_states(spec)
        # after recovery + sync rounds every replica agrees
        assert all(state == states[0] for state in states)

    def test_firewall_never_leaked_unsolicited_traffic(self, soaked_world):
        world, generator, victim = soaked_world
        # all flows were client-initiated, so every packet a client
        # received must belong to a connection it opened
        client_ports = {
            (flow.client.ip, flow.src_port) for flow in generator.flows_started
        }
        for client in world.clients:
            for record in client.received:
                tup = record.packet.five_tuple()
                assert (tup.dst_ip, tup.dst_port) in client_ports
