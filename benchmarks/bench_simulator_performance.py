"""[S1] Simulator performance: events/sec and packets/sec of the harness.

Not a paper experiment — this benchmarks the *reproduction substrate*
itself, so regressions in the simulation kernel or the switch pipeline
show up in CI.  Unlike the experiment benchmarks (single-shot pedantic
runs), these use real pytest-benchmark rounds.
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, ".")

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


@pytest.mark.benchmark(group="simulator")
def test_benchmark_event_throughput(benchmark):
    """Raw kernel: schedule+dispatch 20k trivial events."""

    def run():
        sim = Simulator()
        counter = [0]

        def bump():
            counter[0] += 1

        for i in range(20_000):
            sim.schedule(i * 1e-7, bump)
        sim.run()
        return counter[0]

    assert benchmark(run) == 20_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_forwarding_throughput(benchmark):
    """Packets through a 3-switch mesh with plain L3 forwarding."""

    def run():
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        book = AddressBook()
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
        dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
        topo.connect("src", "s0")
        topo.connect("dst", "s2")
        deployment = SwiShmemDeployment(sim, topo, switches, address_book=book)
        for i in range(2_000):
            sim.schedule(
                i * 1e-6,
                lambda: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)),
            )
        sim.run(until=5e-3)
        return len(dst.received)

    assert benchmark(run) == 2_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_ewo_replication_throughput(benchmark):
    """Counter increments with per-write broadcast on a 3-switch group."""

    def run():
        sim = Simulator()
        topo = Topology(sim, SeededRng(2))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        deployment = SwiShmemDeployment(sim, topo, switches, sync_period=10.0)
        spec = deployment.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=64)
        )
        for i in range(1_000):
            sim.schedule(
                i * 1e-6,
                lambda i=i: deployment.manager(f"s{i % 3}").register_increment(
                    spec, f"k{i % 16}", 1
                ),
            )
        sim.run(until=5e-3)
        return sum(deployment.ewo_states(spec)[0].values())

    assert benchmark(run) == 1_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_sro_chain_throughput(benchmark):
    """Chain-replicated writes end to end (request, 2 hops, acks)."""

    def run():
        sim = Simulator()
        topo = Topology(sim, SeededRng(3))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        deployment = SwiShmemDeployment(sim, topo, switches, sync_period=10.0)
        spec = deployment.declare(RegisterSpec("r", Consistency.SRO, capacity=64))
        for i in range(300):
            sim.schedule(
                i * 30e-6,
                lambda i=i: deployment.manager("s0").register_write(spec, f"k{i % 16}", i),
            )
        sim.run(until=0.05)
        return deployment.manager("s0").sro.stats_for(spec.group_id).writes_committed

    assert benchmark(run) == 300
