"""DDoS attack traffic mixes.

The DDoS experiments need traffic with a controllable attack phase:

* **background** — many clients talking to many servers, destination
  popularity mildly skewed (normal entropy levels);
* **attack** — a botnet of ``bot_count`` synthetic sources all hitting
  one victim (destination entropy collapses, source entropy rises).

:class:`AttackScenario` schedules both phases onto end hosts and
records ground truth (attack start/end) so detection experiments can
compute detection latency, hits, and false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.endhost import EndHost
from repro.net.packet import make_udp_packet
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.workload.zipf import ZipfSampler

__all__ = ["AttackScenario"]


@dataclass
class AttackScenario:
    """Background + attack traffic over a set of injection points."""

    sim: Simulator
    clients: Sequence[EndHost]
    server_ips: Sequence[str]
    rng: SeededRng
    background_pps: float = 20000.0
    attack_pps: float = 100000.0
    attack_start: float = 10e-3
    attack_duration: float = 10e-3
    bot_count: int = 200
    victim_ip: Optional[str] = None
    zipf_s: float = 0.8
    payload_size: int = 256

    background_sent: int = field(default=0, init=False)
    attack_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.clients or not self.server_ips:
            raise ValueError("need clients and servers")
        if self.victim_ip is None:
            self.victim_ip = self.server_ips[0]
        self._bg_rng = self.rng.stream("attack:background")
        self._atk_rng = self.rng.stream("attack:attack")
        self._dst_sampler = ZipfSampler(
            len(self.server_ips), s=self.zipf_s, rng=self.rng.stream("attack:dst-zipf")
        )
        self._running = False

    @property
    def attack_end(self) -> float:
        return self.attack_start + self.attack_duration

    def in_attack(self, time: float) -> bool:
        return self.attack_start <= time < self.attack_end

    # ------------------------------------------------------------------
    def start(self, duration: float) -> "AttackScenario":
        self._running = True
        self._deadline = self.sim.now + duration
        self._origin = self.sim.now
        self._schedule_background()
        self.sim.schedule_at(
            self._origin + self.attack_start, self._schedule_attack, label="attack-start"
        )
        return self

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_background(self) -> None:
        if not self._running or self.sim.now > self._deadline:
            return
        gap = self._bg_rng.expovariate(self.background_pps)
        self.sim.schedule(gap, self._send_background, label="attack-bg")

    def _send_background(self) -> None:
        if not self._running or self.sim.now > self._deadline:
            return
        client = self._bg_rng.choice(self.clients)
        dst = self.server_ips[self._dst_sampler.sample()]
        packet = make_udp_packet(
            src_ip=client.ip,
            dst_ip=dst,
            src_port=self._bg_rng.randint(1024, 65535),
            dst_port=443,
            payload_size=self.payload_size,
        )
        client.inject(packet)
        self.background_sent += 1
        self._schedule_background()

    # ------------------------------------------------------------------
    def _schedule_attack(self) -> None:
        if not self._running:
            return
        if self.sim.now >= self._origin + self.attack_end:
            return
        gap = self._atk_rng.expovariate(self.attack_pps)
        self.sim.schedule(gap, self._send_attack, label="attack-pkt")

    def _send_attack(self) -> None:
        if not self._running or self.sim.now >= self._origin + self.attack_end:
            return
        # Spoofed bot source addresses: many sources, one victim.
        bot = self._atk_rng.randint(0, self.bot_count - 1)
        src_ip = f"203.0.{bot // 256}.{bot % 256}"
        client = self._atk_rng.choice(self.clients)
        packet = make_udp_packet(
            src_ip=src_ip,
            dst_ip=self.victim_ip,
            src_port=self._atk_rng.randint(1024, 65535),
            dst_port=53,
            payload_size=self.payload_size,
        )
        client.inject(packet)
        self.attack_sent += 1
        self._schedule_attack()
