"""Controller high availability: lease-based leadership over N replicas.

The control plane the paper assumes in section 6.3 is a single point of
failure.  This module replicates it: a :class:`ControllerCluster` owns
``N`` :class:`~repro.protocols.controller.CentralController` replicas,
of which at most one — the *leader* — holds a simulated-time lease and
acts on the deployment.  The rest are warm standbys.

**Lease protocol.**  The leader re-extends its lease every
``renew_period = duration / 3`` and broadcasts a
:class:`~repro.protocols.messages.LeaseRenewal` carrying its own
self-fencing time (``expires_at``) to every standby over the management
network.  Extension requires evidence the leader can still reach the
fabric (management path unblocked; in heartbeat mode, a switch beacon
within the detection bound) — a leader cut off from every switch stops
extending, runs out its lease, and self-fences.  A standby's takeover
deadline is computed from the *advertised* ``expires_at``, never from
receipt time:

    ``takeover_k = last_advertised_expiry + margin + k * stagger``

with ``margin = renew_period + beacon_quiet + 2 * config_latency`` —
the advertisement granularity, plus how long a cut-off leader may keep
extending before its health check trips (``beacon_quiet`` = detection
bound in heartbeat mode), plus management-network slack.  Since the
incumbent stops acting at ``expires_at + beacon_quiet + renew_period``
at the latest, the successor provably activates after the incumbent
has self-fenced: at most one replica is ever *active* (leading, lease
unexpired, fabric reachable).  The per-rank ``stagger`` exceeds the
reconstruction window, so if the first candidate turns out to be the
partitioned one (promotes, gets no reconstruction replies, abdicates),
it is gone before the next candidate fires.

**Epochs.**  Each activation allocates a strictly increasing controller
epoch (modeling a generation counter in the management config store).
Every configuration push is an epoch-stamped
:class:`~repro.protocols.messages.ControllerCommand`; switches remember
the highest epoch they have obeyed and reject lower ones, so a deposed
leader's in-flight commands cannot land after its successor takes over.

**Reconstruction.**  A non-initial activation distrusts local state:
the new leader queries every switch
(:class:`~repro.protocols.messages.ReconstructQuery`) and rebuilds
chain membership, catch-up status, and liveness from the replies —
re-exciing unreachable switches, re-admitting excised-but-alive ones,
and re-driving snapshot transfers the dead leader orphaned mid-flight.

The cluster is installed as ``deployment.controller`` and keeps the
single-controller API: aggregate event lists (``failures``,
``recoveries``, …) concatenate across replicas, and anything else
delegates to the acting (or most recent) leader, so a single-replica
cluster is behaviourally identical to the seed's ``CentralController``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.controller import (
    DEFAULT_CONFIG_LATENCY,
    DEFAULT_DETECT_PERIOD,
    DEFAULT_DRAIN_DELAY,
    DEFAULT_HEARTBEAT_PERIOD,
    DEFAULT_HEARTBEAT_TIMEOUT,
    CentralController,
    FailureEvent,
    RecoveryEvent,
)
from repro.protocols.messages import Heartbeat, LeaseRenewal
from repro.switch.pktgen import PacketGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment

__all__ = ["LeaseConfig", "ControllerCluster", "DEFAULT_LEASE_DURATION"]

#: Default leadership lease duration.
DEFAULT_LEASE_DURATION = 5e-3


@dataclass(frozen=True)
class LeaseConfig:
    """Leadership lease timing knobs.

    ``margin`` and ``stagger`` default to values derived from the
    deployment's detection and management-latency parameters (see the
    module docstring for the safety argument); override them only in
    experiments probing the protocol's own failure modes.
    """

    duration: float = DEFAULT_LEASE_DURATION
    #: The leader renews every ``duration / renew_divisor``.
    renew_divisor: int = 3
    margin: Optional[float] = None
    stagger: Optional[float] = None

    @property
    def renew_period(self) -> float:
        return self.duration / self.renew_divisor


class ControllerCluster:
    """N controller replicas acting as one highly available controller."""

    def __init__(
        self,
        deployment: "SwiShmemDeployment",
        replicas: int = 1,
        lease: Any = None,
        detect_period: float = DEFAULT_DETECT_PERIOD,
        config_latency: float = DEFAULT_CONFIG_LATENCY,
        drain_delay: float = DEFAULT_DRAIN_DELAY,
        detection: str = "heartbeat",
        heartbeat_period: float = DEFAULT_HEARTBEAT_PERIOD,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        if detection not in ("heartbeat", "oracle"):
            raise ValueError(f"unknown detection mode {detection!r}")
        if replicas < 1:
            raise ValueError("a controller cluster needs at least one replica")
        # ``replicas`` must exist before anything that could trigger
        # __getattr__ delegation.
        self.replicas: List[CentralController] = []
        self.deployment = deployment
        self.sim = deployment.sim
        self.detect_period = detect_period
        self.config_latency = config_latency
        self.drain_delay = drain_delay
        self.detection = detection
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        if lease is None:
            lease = LeaseConfig()
        elif not isinstance(lease, LeaseConfig):
            lease = LeaseConfig(duration=float(lease))
        self.lease_config = lease
        self.lease_duration = lease.duration
        self.renew_period = lease.renew_period
        beacon_quiet = (
            heartbeat_period + heartbeat_timeout if detection == "heartbeat" else 0.0
        )
        self.takeover_margin = (
            lease.margin
            if lease.margin is not None
            else self.renew_period + beacon_quiet + 2 * config_latency
        )
        # Must exceed the reconstruction window (3 x config_latency) so
        # a candidate that promotes and abdicates is out of the way
        # before the next rank fires.
        self.takeover_stagger = (
            lease.stagger if lease.stagger is not None else 5 * config_latency
        )
        #: Monotonic epoch allocator (a generation counter in the
        #: management config store; activation = a CAS bump).
        self.max_epoch = 0
        self._stopped = False
        #: Injection times noted by experiments (survives leader death:
        #: it is measurement bookkeeping, not controller state).
        self._fail_times: Dict[str, float] = {}
        #: recover_switch requests that arrived while no leader was
        #: active; drained after the next successful reconstruction.
        self._pending_recoveries: List[Tuple[str, bool]] = []
        #: Replica ids whose management connectivity is severed
        #: (controller <-> switch *and* controller <-> controller).
        self._mgmt_blocked: set = set()
        self.leader_changes = 0
        self.lease_expiries = 0
        #: (time, action, replica_id, detail) — activations, deposals,
        #: crashes, reconstructions; part of chaos determinism digests.
        self.leader_log: List[Tuple[float, str, int, Any]] = []
        self._last_leader: Optional[CentralController] = None
        metrics = deployment.metrics
        self._m_leader_changes = metrics.counter(
            "controller.leader_changes", "controller"
        )
        self._m_lease_expiries = metrics.counter(
            "controller.lease_expiries", "controller"
        )
        self._m_reconstruction = metrics.histogram(
            "controller.reconstruction_latency_seconds", "controller"
        )
        self._hb_seq = 0
        self._hb_generators: Dict[str, PacketGenerator] = {}
        if detection == "heartbeat":
            for switch in deployment.switches:
                self.restart_heartbeat_for(switch.name)
        for replica_id in range(replicas):
            self.replicas.append(CentralController(self, replica_id))
        self.activate(self.replicas[0], initial=True)

    def rebind_observability(self) -> None:
        """Re-capture the deployment's observability hooks on the
        cluster and every replica (``Deployment.rebind_observability``)."""
        metrics = self.deployment.metrics
        self._m_leader_changes = metrics.counter(
            "controller.leader_changes", "controller"
        )
        self._m_lease_expiries = metrics.counter(
            "controller.lease_expiries", "controller"
        )
        self._m_reconstruction = metrics.histogram(
            "controller.reconstruction_latency_seconds", "controller"
        )
        for replica in self.replicas:
            replica._bind_observability()

    # ------------------------------------------------------------------
    # Leadership bookkeeping
    # ------------------------------------------------------------------
    def active_leader(self) -> Optional[CentralController]:
        """The replica currently able to act on the deployment, if any."""
        for replica in self.replicas:
            if replica.is_active_leader:
                return replica
        return None

    @property
    def leader(self) -> Optional[CentralController]:
        return self.active_leader()

    def _delegate(self) -> CentralController:
        """Where single-controller API calls land: the active leader,
        else the most recent one (its view is the best available)."""
        leader = self.active_leader()
        if leader is not None:
            self._last_leader = leader
            return leader
        if self._last_leader is not None:
            return self._last_leader
        return self.replicas[0]

    def activate(self, replica: CentralController, initial: bool = False) -> None:
        """Grant ``replica`` the lease under a freshly allocated epoch."""
        if self._stopped or replica.failed or replica.role == "leader":
            return
        now = self.sim.now
        self.max_epoch += 1
        replica.epoch = self.max_epoch
        replica._seen_epoch = self.max_epoch
        replica.role = "leader"
        replica.lease_expires = now + self.lease_duration
        replica.lease_view = now + self.lease_duration
        replica._next_renew = now + self.renew_period
        replica._deadline_base = now
        if self.deployment.manager(replica.host).switch.failed:
            replica._rehome()
        self.leader_changes += 1
        self._m_leader_changes.inc()
        self.leader_log.append((now, "activate", replica.replica_id, replica.epoch))
        self._last_leader = replica
        # Root span for this reign: every command/repair/recovery span
        # this leader emits descends from it, so a takeover shows up as
        # a fresh trace rooted at the successor's activation.
        replica.trace_ctx = replica.causal.root()
        if replica._flightrec.enabled:
            replica._flightrec.record(
                replica.trace_ctx,
                "controller.activate",
                replica.node,
                now,
                epoch=replica.epoch,
                initial=initial,
            )
        replica._broadcast_renewal()
        if not initial:
            # The initial leader of a fresh deployment knows everything;
            # any later activation must rebuild its view from the fabric.
            replica.begin_reconstruction()

    def on_leader_deposed(self, replica: CentralController, reason: str) -> None:
        if reason == "lease-expired":
            self.lease_expiries += 1
            self._m_lease_expiries.inc()
        self.leader_log.append((self.sim.now, "depose", replica.replica_id, reason))

    def note_reconstruction(self, replica: CentralController, latency: float) -> None:
        self._m_reconstruction.observe(latency)
        self.leader_log.append(
            (self.sim.now, "reconstructed", replica.replica_id, round(latency, 12))
        )

    def observe_epoch(self, epoch: int) -> None:
        if epoch > self.max_epoch:
            self.max_epoch = epoch

    def deliver_renewal(
        self, peer: CentralController, renewal: LeaseRenewal
    ) -> None:
        if self._stopped or peer.failed or self.mgmt_blocked(peer):
            return
        peer.on_lease_renewal(renewal)

    def leadership_digest(self) -> Tuple[Tuple[float, str, int, Any], ...]:
        """Canonical leadership history for determinism comparisons."""
        return tuple(self.leader_log)

    def leaderless_intervals(
        self, until: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Windows ``[(start, end)]`` during which no replica acted as
        leader, derived from ``leader_log``.

        A window opens when the acting leader crashes, is deposed, or
        loses management connectivity, and closes at the next
        activation.  A window still open at the end of the log closes
        at ``until`` (default: the current sim time).  Critical-path
        attribution charges writer retry waits that overlap these
        windows to the ``leaderless_window`` cause: reconfiguration
        commands cannot be issued while nobody holds the lease.
        """
        horizon = self.sim.now if until is None else until
        intervals: List[Tuple[float, float]] = []
        leader_id: Optional[int] = None
        open_at: Optional[float] = None
        for now, kind, replica_id, detail in self.leader_log:
            if kind == "activate":
                if open_at is not None and now > open_at:
                    intervals.append((open_at, now))
                open_at = None
                leader_id = replica_id
            elif leader_id is not None and replica_id == leader_id:
                if kind == "depose" or (kind == "crash" and detail == "leader") or kind == "partition":
                    if open_at is None:
                        open_at = now
                    leader_id = None
        if open_at is not None and horizon > open_at:
            intervals.append((open_at, horizon))
        return intervals

    # ------------------------------------------------------------------
    # Chaos hooks: controller crash / restore / management partition
    # ------------------------------------------------------------------
    def crash_replica(self, replica_id: int) -> None:
        """Fail-stop one controller replica (its events no-op from now)."""
        replica = self.replicas[replica_id]
        if replica.failed:
            return
        replica.failed = True
        self.leader_log.append((self.sim.now, "crash", replica_id, replica.role))

    def restore_replica(self, replica_id: int) -> None:
        """Restart a crashed replica as a standby with a fresh lease view."""
        replica = self.replicas[replica_id]
        if not replica.failed:
            return
        replica.failed = False
        replica.role = "standby"
        replica.reconstructing = False
        replica.lease_expires = float("-inf")
        # Grace: assume an incumbent exists until renewals prove otherwise.
        replica.lease_view = self.sim.now + self.lease_duration
        self.leader_log.append((self.sim.now, "restore", replica_id, ""))

    def mgmt_blocked(self, replica: CentralController) -> bool:
        return replica.replica_id in self._mgmt_blocked

    def set_mgmt_partition(self, replica_id: int, blocked: bool) -> None:
        """Sever (or heal) one replica's management connectivity — to
        switches *and* to its peer replicas.  A blocked leader stops
        hearing beacons and cannot extend or advertise its lease, so it
        self-fences and a connected standby takes over."""
        if blocked:
            self._mgmt_blocked.add(replica_id)
        else:
            self._mgmt_blocked.discard(replica_id)
        self.leader_log.append(
            (self.sim.now, "partition" if blocked else "heal", replica_id, "")
        )

    # ------------------------------------------------------------------
    # Heartbeat plumbing (cluster-owned: beacons chase the leader)
    # ------------------------------------------------------------------
    def restart_heartbeat_for(self, name: str) -> None:
        """(Re)start the heartbeat packet generator on one switch."""
        if self.detection != "heartbeat":
            return
        old = self._hb_generators.pop(name, None)
        if old is not None:
            old.stop()
        switch = self.deployment.manager(name).switch
        phase_stream = self.deployment.rng.stream(f"heartbeat-phase:{name}")
        generator = PacketGenerator(
            switch,
            period=self.heartbeat_period,
            body=lambda s=switch: self._emit_heartbeat(s),
            name="heartbeat",
            phase=phase_stream.uniform(0.1, 1.0) * self.heartbeat_period,
        )
        generator.start()
        self._hb_generators[name] = generator

    def _emit_heartbeat(self, switch) -> None:
        if switch.failed or self._stopped:
            return
        leader = self.active_leader()
        if leader is None:
            return  # no one is listening; the next leader resets deadlines
        self._hb_seq += 1
        beacon = Heartbeat(origin=switch.name, seq=self._hb_seq, sent_at=self.sim.now)
        if switch.name == leader.host:
            # The host's beacon reaches the controller over its own
            # management port — no network hop to lose.
            self.on_heartbeat(beacon, at_switch=switch.name)
            return
        packet = Packet(
            swishmem=SwiShmemHeader(op=SwiShmemOp.HEARTBEAT, dst_node=leader.host),
            swishmem_payload=beacon,
        )
        switch.generate_packet(packet, leader.host)

    def on_heartbeat(self, beacon: Heartbeat, at_switch: Optional[str] = None) -> None:
        """A beacon reached ``at_switch``: hand it up the management
        port of every live replica homed there."""
        if at_switch is None:
            at_switch = self._delegate().host
        for replica in self.replicas:
            if replica.failed or replica.host != at_switch:
                continue
            if self.mgmt_blocked(replica):
                continue
            replica.on_heartbeat(beacon)

    # ------------------------------------------------------------------
    # Single-controller API (facade over the replica set)
    # ------------------------------------------------------------------
    def note_failure_time(self, switch_name: str) -> None:
        """Experiments call this when injecting a fault, so detection
        latency can be measured.  Optional."""
        self._fail_times.setdefault(switch_name, self.sim.now)

    def recover_switch(self, name: str, wipe_state: bool = True) -> Optional[RecoveryEvent]:
        """Bring a failed switch back.  With no active leader (controller
        failover in progress) the request queues and is executed by the
        next leader after reconstruction; ``None`` is returned."""
        leader = self.active_leader()
        if leader is None or leader.reconstructing:
            self._pending_recoveries.append((name, wipe_state))
            return None
        return leader.recover_switch(name, wipe_state=wipe_state)

    def has_pending_recoveries(self) -> bool:
        return bool(self._pending_recoveries)

    def drain_pending_recoveries(self, leader: CentralController) -> None:
        pending, self._pending_recoveries = self._pending_recoveries, []
        for name, wipe_state in pending:
            if not leader._is_active():
                self._pending_recoveries.append((name, wipe_state))
                continue
            if self.deployment.manager(name).switch.failed:
                leader.recover_switch(name, wipe_state=wipe_state)

    @property
    def detection_bound(self) -> float:
        return self._delegate().detection_bound

    @property
    def failover_bound(self) -> float:
        """Worst-case extra unavailability a controller failover adds:
        lease run-out + takeover margin/stagger + reconstruction."""
        stagger = self.takeover_stagger * max(0, len(self.replicas) - 1)
        return (
            self.lease_duration
            + self.takeover_margin
            + stagger
            + 3 * self.config_latency
        )

    @property
    def host(self) -> str:
        return self._delegate().host

    @property
    def epoch(self) -> int:
        return self._delegate().epoch

    @property
    def failures(self) -> List[FailureEvent]:
        if len(self.replicas) == 1:
            return self.replicas[0].failures
        events = [event for replica in self.replicas for event in replica.failures]
        events.sort(key=lambda event: event.detected_at)
        return events

    @property
    def recoveries(self) -> List[RecoveryEvent]:
        if len(self.replicas) == 1:
            return self.replicas[0].recoveries
        events = [event for replica in self.replicas for event in replica.recoveries]
        events.sort(key=lambda event: event.started_at)
        return events

    @property
    def aborted_recoveries(self) -> List[Tuple[int, str, float]]:
        if len(self.replicas) == 1:
            return self.replicas[0].aborted_recoveries
        events = [item for replica in self.replicas for item in replica.aborted_recoveries]
        events.sort(key=lambda item: item[2])
        return events

    @property
    def heartbeats_received(self) -> int:
        return sum(replica.heartbeats_received for replica in self.replicas)

    @property
    def false_positives(self) -> int:
        return sum(replica.false_positives for replica in self.replicas)

    @property
    def rehomes(self) -> int:
        return sum(replica.rehomes for replica in self.replicas)

    @property
    def link_events(self) -> int:
        return sum(replica.link_events for replica in self.replicas)

    @property
    def _known_failed(self) -> set:
        return self._delegate()._known_failed

    @property
    def _recovery_gen(self) -> Dict[Tuple[int, str], int]:
        return self._delegate()._recovery_gen

    @property
    def _last_heard(self) -> Dict[str, float]:
        return self._delegate()._last_heard

    def last_failure(self) -> Optional[FailureEvent]:
        failures = self.failures
        return failures[-1] if failures else None

    def stop(self) -> None:
        """Tear the whole cluster down: every replica's periodic process
        and every heartbeat generator.  After in-flight events drain,
        the sim queue holds nothing of the controller's."""
        self._stopped = True
        for replica in self.replicas:
            replica.stop()
        for generator in self._hb_generators.values():
            generator.stop()
        self._hb_generators.clear()
