"""INT-style per-packet telemetry.

In-band Network Telemetry is the P4 data plane's native observability
mechanism: each INT-capable switch on a packet's path pushes a small
metadata record onto the packet itself, and the sink at the end of the
path pops the whole stack to reconstruct where the packet spent its
time.  This module models the hop-by-hop variant (INT-MD):

* :class:`IntHopRecord` — one hop's metadata: switch name, ingress and
  egress simulation time, queue depth on arrival, and how many SwiShmem
  register operations the pipeline executed on the packet at that hop.
* :class:`IntTelemetry` — the per-packet stack, carried in
  ``Packet.int_data`` (a real header field, *not* ``Packet.meta``,
  because PISA metadata is discarded at every switch).  Its wire size
  (shim + per-hop records) is counted in ``Packet.wire_size``, so INT
  overhead shows up in serialization delay exactly as it would on the
  wire.  A ``max_hops`` budget mirrors the hop-count limit of the INT
  spec: past it, hops increment ``truncated`` instead of appending.
* :func:`decode_path` — turns a stack into per-hop latency breakdowns
  (queue wait vs. pipeline vs. inter-hop link time).
* :class:`IntSink` — collects completed stacks at the receiving end and
  feeds path latency histograms in a :class:`MetricsRegistry`.

Switches stamp hops only when ``int_enabled`` is set on the switch, so
the default data path carries no INT state at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "INT_SHIM_BYTES",
    "INT_HOP_BYTES",
    "IntHopRecord",
    "IntTelemetry",
    "HopBreakdown",
    "decode_path",
    "IntSink",
]

#: Fixed INT shim header (instruction bitmap + hop count + flags).
INT_SHIM_BYTES = 8

#: Bytes one hop record adds to the wire: node id (4) + two 4-byte
#: timestamps + queue depth (2) + state-op count (2).
INT_HOP_BYTES = 16


@dataclass
class IntHopRecord:
    """Metadata pushed by one switch."""

    node: str
    ingress_time: float
    egress_time: float
    queue_depth: int = 0
    state_ops: int = 0

    @property
    def hop_latency(self) -> float:
        """Total time spent at this switch (queue wait + pipeline)."""
        return self.egress_time - self.ingress_time

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "ingress_time": self.ingress_time,
            "egress_time": self.egress_time,
            "queue_depth": self.queue_depth,
            "state_ops": self.state_ops,
            "hop_latency": self.hop_latency,
        }


@dataclass
class IntTelemetry:
    """The per-packet INT stack: shim + accumulated hop records."""

    hops: List[IntHopRecord] = field(default_factory=list)
    max_hops: int = 16
    truncated: int = 0

    @property
    def wire_size(self) -> int:
        return INT_SHIM_BYTES + INT_HOP_BYTES * len(self.hops)

    def push(self, record: IntHopRecord) -> bool:
        """Append a hop record; False (and a truncation count) past budget."""
        if len(self.hops) >= self.max_hops:
            self.truncated += 1
            return False
        self.hops.append(record)
        return True

    @property
    def path(self) -> List[str]:
        return [hop.node for hop in self.hops]


@dataclass
class HopBreakdown:
    """Decoded timing for one hop, including the link leading into it."""

    node: str
    link_latency: float  # previous hop's egress -> this hop's ingress
    hop_latency: float  # time spent at the switch
    queue_depth: int
    state_ops: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "link_latency": self.link_latency,
            "hop_latency": self.hop_latency,
            "queue_depth": self.queue_depth,
            "state_ops": self.state_ops,
        }


def decode_path(
    telemetry: IntTelemetry, delivered_at: Optional[float] = None
) -> Dict[str, Any]:
    """Decode an INT stack into an end-to-end latency breakdown.

    ``delivered_at`` is the sink's receive time; when given, the wire
    time from the last switch to the sink is included and
    ``total_latency`` covers first ingress to delivery.
    """
    breakdowns: List[HopBreakdown] = []
    previous_egress: Optional[float] = None
    for hop in telemetry.hops:
        link_latency = (
            hop.ingress_time - previous_egress if previous_egress is not None else 0.0
        )
        breakdowns.append(
            HopBreakdown(
                node=hop.node,
                link_latency=link_latency,
                hop_latency=hop.hop_latency,
                queue_depth=hop.queue_depth,
                state_ops=hop.state_ops,
            )
        )
        previous_egress = hop.egress_time
    switch_time = sum(b.hop_latency for b in breakdowns)
    link_time = sum(b.link_latency for b in breakdowns)
    last_mile = 0.0
    if delivered_at is not None and previous_egress is not None:
        last_mile = delivered_at - previous_egress
    total = switch_time + link_time + last_mile
    return {
        "path": telemetry.path,
        "hops": [b.as_dict() for b in breakdowns],
        "switch_time": switch_time,
        "link_time": link_time + last_mile,
        "total_latency": total,
        "state_ops": sum(b.state_ops for b in breakdowns),
        "truncated": telemetry.truncated,
    }


class IntSink:
    """Terminates INT paths: strips stacks, decodes them, feeds metrics.

    Attach to an :class:`~repro.net.endhost.EndHost` via ``on_receive``,
    or call :meth:`absorb` directly from test/benchmark code.
    """

    def __init__(self, sim: Any, registry: MetricsRegistry = NULL_REGISTRY, node: str = "int-sink") -> None:
        self.sim = sim
        self.node = node
        self.decoded: List[Dict[str, Any]] = []
        self._paths = registry.counter("int.paths_decoded", node)
        self._truncated = registry.counter("int.hops_truncated", node)
        self._total = registry.histogram("int.path_latency_seconds", node)
        self._switch = registry.histogram("int.switch_time_seconds", node)
        self._link = registry.histogram("int.link_time_seconds", node)

    def absorb(self, packet: Any) -> Optional[Dict[str, Any]]:
        """Decode and strip a packet's INT stack; None if it carries none."""
        telemetry = getattr(packet, "int_data", None)
        if telemetry is None or not telemetry.hops:
            return None
        decoded = decode_path(telemetry, delivered_at=self.sim.now)
        packet.int_data = None  # the sink strips telemetry before the app
        self.decoded.append(decoded)
        self._paths.inc()
        if decoded["truncated"]:
            self._truncated.inc(decoded["truncated"])
        self._total.observe(decoded["total_latency"])
        self._switch.observe(decoded["switch_time"])
        self._link.observe(decoded["link_time"])
        return decoded

    def __call__(self, packet: Any, from_node: str) -> None:
        """Matches ``EndHost.on_receive``: ``host.on_receive = sink``."""
        self.absorb(packet)
