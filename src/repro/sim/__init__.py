"""Discrete-event simulation kernel: clock, scheduler, RNG streams, tracing."""

from repro.sim.engine import Event, Process, SimulationError, Simulator, format_time
from repro.sim.random import SeededRng, derive_seed
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "format_time",
    "SeededRng",
    "derive_seed",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
