"""Legacy setup shim: enables `pip install -e .` on environments without
the `wheel` package (offline editable installs use the setup.py develop
path when PEP 517 is disabled)."""
from setuptools import setup

setup()
