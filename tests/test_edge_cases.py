"""Edge cases across the stack: resource exhaustion, double failures,
clock skew, degenerate deployments."""

from __future__ import annotations

import pytest

from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.nf.nat import NatNF

from tests.nfworld import build_nf_world


class TestNatPortExhaustion:
    def test_connections_dropped_when_pool_exhausted(self):
        world = build_nf_world(seed=7, cluster_size=1, clients=1, servers=1)
        world.book.register("100.0.0.1", "egress")
        nats = world.deployment.install_nf(NatNF, nat_ip="100.0.0.1")
        # shrink every instance's local range to 3 ports
        for nat in nats:
            nat._port_limit = nat._next_port + 3
        client, server = world.clients[0], world.servers[0]
        for i in range(6):
            world.sim.schedule(
                i * 2e-3,
                lambda p=2000 + i: client.inject(
                    make_tcp_packet(client.ip, server.ip, p, 80, flags=TcpFlags.SYN)
                ),
            )
        world.sim.run(until=0.1)
        # the first NF switch (ingress) exhausts its 3 ports; further
        # SYNs are dropped rather than mis-translated
        syns_delivered = sum(
            1 for r in server.received if r.packet.tcp.flags & TcpFlags.SYN
        )
        assert syns_delivered == 3
        assert sum(n.stats.dropped for n in nats) == 3


class TestDoubleFailure:
    def test_chain_survives_two_sequential_failures(self, make_deployment):
        dep, _, _ = make_deployment(4)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "a", 1)
        dep.sim.run(until=0.02)
        for victim in ("s1", "s2"):
            dep.controller.note_failure_time(victim)
            dep.fail_switch(victim)
            dep.sim.run(until=dep.sim.now + 0.01)
        assert dep.chains[spec.group_id].members == ("s0", "s3")
        dep.manager("s3").register_write(spec, "b", 2)
        dep.sim.run(until=dep.sim.now + 0.1)
        stores = dep.sro_stores(spec)
        assert all(s == {"a": 1, "b": 2} for s in stores)

    def test_single_survivor_chain_still_serves(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", "v")
        dep.sim.run(until=0.02)
        for victim in ("s1", "s2"):
            dep.controller.note_failure_time(victim)
            dep.fail_switch(victim)
            dep.sim.run(until=dep.sim.now + 0.01)
        chain = dep.chains[spec.group_id]
        assert len(chain) == 1 and chain.head == "s0"
        # the lone member is head, tail, and reader at once
        dep.manager("s0").register_write(spec, "solo", 1)
        dep.sim.run(until=dep.sim.now + 0.05)
        assert dep.manager("s0").register_read(spec, "solo", None) == 1

    def test_ewo_sole_survivor_keeps_state(self, make_deployment):
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        for i in range(9):
            dep.manager(f"s{i % 3}").register_increment(spec, "k", 1)
        dep.sim.run(until=0.01)
        for victim in ("s1", "s2"):
            dep.controller.note_failure_time(victim)
            dep.fail_switch(victim)
        dep.sim.run(until=0.05)
        assert dep.manager("s0").ewo.local_state(spec.group_id)["k"] == 9


class TestClockSkew:
    def test_lww_winner_consistent_despite_skew(self, make_deployment):
        """Even with clock offsets far beyond DPTP's tens of ns, all
        replicas agree on one winner (timestamps order globally)."""
        dep, _, _ = make_deployment(3, clock_skew=1e-3, sync_period=1e-3)
        spec = dep.declare(RegisterSpec("lww", Consistency.EWO, ewo_mode=EwoMode.LWW))
        dep.manager("s0").register_write(spec, "k", "a")
        dep.manager("s1").register_write(spec, "k", "b")
        dep.manager("s2").register_write(spec, "k", "c")
        dep.sim.run(until=0.05)
        states = dep.ewo_states(spec)
        values = {repr(s.get("k")) for s in states}
        assert len(values) == 1

    def test_skew_can_reorder_concurrent_lww_writes(self, make_deployment):
        """For truly *concurrent* writes (no causal delivery in between),
        a fast clock beats a later wall-clock write — the paper's reason
        to bound skew to tens of ns.  (Once causality exists, the hybrid
        clock repairs the order regardless of skew; see the test above.)"""
        dep, _, _ = make_deployment(2, clock_skew=0.0, sync_period=1e-3)
        spec = dep.declare(RegisterSpec("lww", Consistency.EWO, ewo_mode=EwoMode.LWW))
        dep.manager("s0").clock.offset = +10e-3  # fast clock
        dep.manager("s0").register_write(spec, "k", "early-but-fast-clock")
        # s1 writes 2 us later — before s0's update can arrive (5 us link),
        # so the writes are concurrent and only timestamps decide
        dep.sim.schedule(
            2e-6,
            lambda: dep.manager("s1").register_write(spec, "k", "later-wall-clock"),
        )
        dep.sim.run(until=0.05)
        states = dep.ewo_states(spec)
        assert all(s["k"] == "early-but-fast-clock" for s in states)


class TestDegenerateDeployments:
    def test_single_switch_deployment(self, sim, rng):
        from repro.core.manager import SwiShmemDeployment
        from repro.net.topology import Topology, build_full_mesh
        from repro.switch.pisa import PisaSwitch

        topo = Topology(sim, rng)
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 1)
        dep = SwiShmemDeployment(sim, topo, switches)
        sro = dep.declare(RegisterSpec("r", Consistency.SRO))
        ewo = dep.declare(RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        dep.manager("s0").register_write(sro, "k", 1)
        dep.manager("s0").register_increment(ewo, "k", 1)
        sim.run(until=0.05)
        assert dep.manager("s0").register_read(sro, "k", None) == 1
        assert dep.manager("s0").register_read(ewo, "k", None) == 1

    def test_two_switch_chain_head_is_not_tail(self, make_deployment):
        dep, _, _ = make_deployment(2)
        spec = dep.declare(RegisterSpec("r", Consistency.SRO))
        chain = dep.chains[spec.group_id]
        assert chain.head == "s0" and chain.ack_tail == "s1"
        dep.manager("s1").register_write(spec, "k", "v")  # writer = tail
        dep.sim.run(until=0.05)
        assert all(s.get("k") == "v" for s in dep.sro_stores(spec))


class TestPartition:
    def test_ewo_heals_after_full_partition(self, make_deployment):
        """Split a 4-switch mesh into {s0,s1} | {s2,s3}, write on both
        sides, heal, and verify exact convergence — the CRDT + periodic
        sync story under the harshest link failure."""
        dep, topo, _ = make_deployment(4, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        cut = [("s0", "s2"), ("s0", "s3"), ("s1", "s2"), ("s1", "s3")]
        for a, b in cut:
            topo.link_between(a, b).set_up(False)
        dep.sim.run(until=0.002)  # controller notices, reroutes (nothing to reroute)
        for i in range(10):
            dep.manager("s0").register_increment(spec, "k", 1)
            dep.manager("s2").register_increment(spec, "k", 1)
        dep.sim.run(until=0.02)
        # during the partition, each side only sees its own half
        left = dep.manager("s0").ewo.local_state(spec.group_id)["k"]
        right = dep.manager("s2").ewo.local_state(spec.group_id)["k"]
        assert left == 10 and right == 10
        # heal and wait for sync rounds
        for a, b in cut:
            topo.link_between(a, b).set_up(True)
        dep.sim.run(until=0.2)
        states = dep.ewo_states(spec)
        assert all(state["k"] == 20 for state in states)

    def test_lww_partition_converges_to_one_winner(self, make_deployment):
        dep, topo, _ = make_deployment(2, sync_period=1e-3)
        spec = dep.declare(RegisterSpec("lww", Consistency.EWO, ewo_mode=EwoMode.LWW))
        topo.link_between("s0", "s1").set_up(False)
        dep.manager("s0").register_write(spec, "k", "left")
        dep.sim.run(until=0.005)
        dep.manager("s1").register_write(spec, "k", "right")  # later stamp
        dep.sim.run(until=0.01)
        topo.link_between("s0", "s1").set_up(True)
        dep.sim.run(until=0.1)
        states = dep.ewo_states(spec)
        assert all(state["k"] == "right" for state in states)


class TestDscpMarkStacking:
    def test_rate_limiter_and_heavy_hitter_marks_do_not_clash(self):
        """Both NFs mark packets as counted; their DSCP bits are
        distinct, so stacking them double-counts nothing and loses
        nothing."""
        from repro.nf.heavyhitter import COUNTED_MARK, HeavyHitterNF
        from repro.nf.ratelimiter import RateLimiterNF

        assert RateLimiterNF.METERED_MARK != COUNTED_MARK
        assert RateLimiterNF.METERED_MARK & COUNTED_MARK == 0

        world = build_nf_world(seed=13, responder_servers=False)
        world.deployment.install_nf(RateLimiterNF, limit_bps=1e9)
        hh_instances = world.deployment.install_nf(HeavyHitterNF, threshold=5)
        client, server = world.clients[0], world.servers[0]
        from repro.net.packet import make_udp_packet

        for i in range(8):
            world.sim.schedule(
                i * 100e-6,
                lambda: client.inject(
                    make_udp_packet(client.ip, server.ip, 1, 2, payload_size=100)
                ),
            )
        world.sim.run(until=0.05)
        # the heavy-hitter count equals packets sent — once each, despite
        # crossing 3+ marking switches
        hh_spec = world.deployment.spec_by_name("hh_counts")
        count = world.deployment.manager("ingress").ewo.local_state(
            hh_spec.group_id
        )[client.ip]
        assert count == 8
        # and the rate limiter metered exactly the same bytes once
        rl_spec = world.deployment.spec_by_name("rl_usage")
        usage = world.deployment.manager("ingress").ewo.local_state(rl_spec.group_id)
        packet_bytes = 100 + 42
        assert usage["10.0.0"] == 8 * packet_bytes
        # the heavy hitter was still detected
        assert any(client.ip in i.detected for i in hh_instances)


class TestWriteGiveUp:
    def test_unreachable_chain_head_exhausts_retries(self, make_deployment):
        """With the whole rest of the deployment dead and no detector
        running, the writer gives up after MAX_WRITE_ATTEMPTS and drops
        the buffered output instead of leaking it."""
        dep, _, _ = make_deployment(3)
        dep.controller.stop()  # no failure detection -> no chain repair
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.fail_switch("s0")  # head dead, chain never repaired
        writer = dep.manager("s1")
        writer.register_write(spec, "k", "v")
        dep.sim.run(until=3.0)
        stats = writer.sro.stats_for(spec.group_id)
        assert stats.writes_failed == 1
        assert writer.sro.outstanding_count() == 0
        assert writer.switch.control.buffered_count == 0
