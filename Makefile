# SwiShmem reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test bench tables examples chaos scrub advisor critpath relevel all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every experiment table from EXPERIMENTS.md on stdout.
tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

# Seeded chaos soak (experiment F3): faults + nemesis vs SRO and EWO,
# with invariant monitors and a determinism replay check.
chaos:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos_soak.py --quick

# Anti-entropy scrub-and-repair bench (experiment F5): silent
# divergence under compound chaos, detected and healed online.
scrub:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scrub_repair.py --quick

# Access-pattern profiler + consistency advisor (experiment T2):
# re-derive Table 1 from live traffic, zero hand labels.
advisor:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_access_advisor.py

# Critical-path tail attribution + live SLOs (experiment T3): why the
# p99 is slow, cause by cause, with a digest-neutrality replay check.
critpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_critpath_tails.py

# Runtime re-leveling handoff (experiment T4): advisor-driven SRO→EWO
# demotion on the live deployment, under nemesis + leader kill.
relevel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_releveling.py

# The two artifacts EXPERIMENTS.md points reviewers at.
all:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
