"""Tests for the two heavy-hitter implementations (paper section 8)."""

from __future__ import annotations

import pytest

from repro.net.packet import make_udp_packet
from repro.nf.heavyhitter import (
    ControllerHeavyHitterNF,
    HeavyHitterCoordinator,
    HeavyHitterNF,
)

from tests.nfworld import build_nf_world


def hh_world(threshold=30, **kwargs):
    world = build_nf_world(responder_servers=False, **kwargs)
    instances = world.deployment.install_nf(HeavyHitterNF, threshold=threshold)
    return world, instances


def blast(world, src_ip, count, gap=30e-6, dst=None):
    dst = dst or world.servers[0].ip
    client = world.clients[0]
    for i in range(count):
        world.sim.schedule(
            world.sim.now + i * gap,
            lambda: client.inject(make_udp_packet(src_ip, dst, 1, 2, payload_size=64)),
        )


class TestSwiShmemHeavyHitter:
    def test_heavy_source_detected(self):
        world, instances = hh_world(threshold=30)
        blast(world, "1.2.3.4", 40)
        world.sim.run(until=0.05)
        detected = [i for i in instances if "1.2.3.4" in i.detected]
        assert detected  # at least one switch flagged it

    def test_light_source_not_detected(self):
        world, instances = hh_world(threshold=30)
        blast(world, "5.6.7.8", 5)
        world.sim.run(until=0.05)
        assert all("5.6.7.8" not in i.detected for i in instances)

    def test_counts_aggregate_across_switches(self):
        """Each cluster switch sees only part of the traffic, yet the
        shared counter crosses the threshold — the section 8 point."""
        world, instances = hh_world(threshold=30, cluster_size=3)
        # multiple clients -> ECMP spreads the flow's packets? same flow
        # hashes to one path, so use several source ports to spread
        for port in range(6):
            client = world.clients[port % len(world.clients)]
            for i in range(8):
                world.sim.schedule(
                    (port * 8 + i) * 40e-6,
                    lambda c=client, p=3000 + port: c.inject(
                        make_udp_packet("9.9.9.9", world.servers[0].ip, p, 2, payload_size=64)
                    ),
                )
        world.sim.run(until=0.1)
        spec = world.deployment.spec_by_name("hh_counts")
        per_switch = [
            world.deployment.manager(s.name).ewo.groups[spec.group_id].vectors.get("9.9.9.9")
            for s in world.cluster
        ]
        contributing = sum(
            1 for vec in per_switch if vec and vec[world.deployment.node_id(world.cluster[0].name)] is not None
        )
        # detection happened even though the 48 packets were split
        assert any("9.9.9.9" in i.detected for i in instances)


class TestControllerBaseline:
    def _world(self, threshold=30):
        world = build_nf_world(responder_servers=False)
        coordinator = HeavyHitterCoordinator(world.sim, threshold=threshold)
        instances = world.deployment.install_nf(
            ControllerHeavyHitterNF, threshold=threshold, coordinator=coordinator
        )
        return world, instances, coordinator

    def test_requires_coordinator(self):
        world = build_nf_world()
        with pytest.raises(ValueError):
            world.deployment.install_nf(ControllerHeavyHitterNF, threshold=10)

    def test_detects_via_reports(self):
        world, instances, coordinator = self._world(threshold=30)
        blast(world, "1.2.3.4", 40)
        world.sim.run(until=0.1)
        assert "1.2.3.4" in coordinator.detected
        assert coordinator.reports_received > 0
        assert sum(i.reports_sent for i in instances) >= coordinator.reports_received

    def test_no_reports_below_trigger(self):
        world, instances, coordinator = self._world(threshold=100)
        blast(world, "5.6.7.8", 3)  # below threshold/num_switches
        world.sim.run(until=0.05)
        assert coordinator.reports_received == 0

    def test_communication_overhead_counted(self):
        world, instances, coordinator = self._world(threshold=30)
        blast(world, "1.2.3.4", 60)
        world.sim.run(until=0.1)
        assert coordinator.report_bytes == coordinator.reports_received * 12
