"""[P5] SRO write-throughput ceiling (paper sections 6.1 and 9).

Section 6.1: SRO's "write throughput is limited by the need to send
packets through the control plane."  Section 9 names the consequence:
"One current limitation of SwiShmem is the need for control plane
involvement to achieve strongly consistent writes … some new in-network
applications like sequencers have such data."

The experiment offers an increasing write rate to one switch and
measures committed-write throughput for

* **SRO** at two control-plane op latencies (the ceiling must track
  ~1/op_latency, because the writer's CPU serializes the punt+send);
* **EWO** under the same offered load (no ceiling in this range), the
  contrast that motivates the paper's consistency split.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_rate, print_header, print_table

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

DURATION = 50e-3


@dataclass
class ThroughputResult:
    protocol: str
    cpu_op_latency: float
    offered_rate: float
    committed_rate: float
    efficiency: float


def run_point(
    protocol: str, offered_rate: float, cpu_op_latency: float = 20e-6, seed: int = 81
) -> ThroughputResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim, control_op_latency=cpu_op_latency), 3
    )
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=5e-3)
    if protocol == "sro":
        spec = deployment.declare(RegisterSpec("reg", Consistency.SRO, capacity=64))
    else:
        spec = deployment.declare(
            RegisterSpec("reg", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=64)
        )
    writer = deployment.manager("s0")
    count = int(offered_rate * DURATION)
    gap = 1.0 / offered_rate
    for i in range(count):
        if protocol == "sro":
            sim.schedule(i * gap, lambda i=i: writer.register_write(spec, f"k{i % 16}", i))
        else:
            sim.schedule(i * gap, lambda i=i: writer.register_increment(spec, f"k{i % 16}", 1))
    sim.run(until=DURATION)
    if protocol == "sro":
        committed = writer.sro.stats_for(spec.group_id).writes_committed
    else:
        committed = writer.ewo.stats_for(spec.group_id).local_writes
    committed_rate = committed / DURATION
    return ThroughputResult(
        protocol=protocol.upper(),
        cpu_op_latency=cpu_op_latency,
        offered_rate=offered_rate,
        committed_rate=committed_rate,
        efficiency=committed_rate / offered_rate,
    )


def run_experiment() -> List[ThroughputResult]:
    results = []
    for offered in (10_000, 40_000, 80_000, 160_000):
        results.append(run_point("sro", offered, cpu_op_latency=20e-6))
    results.append(run_point("sro", 80_000, cpu_op_latency=40e-6))
    results.append(run_point("ewo", 160_000, cpu_op_latency=20e-6))
    return results


def report(results: List[ThroughputResult]) -> None:
    print_header(
        "P5",
        "SRO write-throughput ceiling vs control-plane speed (and EWO contrast)",
        "SRO write throughput is limited by the control plane "
        "(~1/op_latency); write-intensive data must use EWO",
    )
    print_table(
        ["protocol", "cpu op", "offered", "committed", "efficiency"],
        [
            (
                r.protocol,
                f"{r.cpu_op_latency * 1e6:.0f}us",
                fmt_rate(r.offered_rate),
                fmt_rate(r.committed_rate),
                f"{r.efficiency * 100:.0f}%",
            )
            for r in results
        ],
    )
    emit_json(
        "P5",
        "SRO write-throughput ceiling vs control-plane speed (and EWO contrast)",
        results,
    )


@pytest.mark.benchmark(group="experiment")
def test_sro_throughput_ceiling_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    sro_20 = [r for r in results if r.protocol == "SRO" and r.cpu_op_latency == 20e-6]
    ceiling_20 = 1.0 / 20e-6  # one CPU op per write send
    # below the ceiling: nearly all writes commit
    assert sro_20[0].efficiency > 0.95
    assert sro_20[1].efficiency > 0.90
    # above the ceiling: committed rate saturates near 1/op_latency
    saturated = sro_20[-1]
    assert saturated.offered_rate > ceiling_20
    assert saturated.committed_rate <= ceiling_20 * 1.1
    assert saturated.committed_rate >= ceiling_20 * 0.6
    # doubling the CPU op latency halves the ceiling
    sro_40 = next(r for r in results if r.cpu_op_latency == 40e-6)
    assert sro_40.committed_rate <= (1.0 / 40e-6) * 1.1
    assert sro_40.committed_rate < saturated.committed_rate
    # EWO takes the full offered load in stride
    ewo = next(r for r in results if r.protocol == "EWO")
    assert ewo.efficiency > 0.99


@pytest.mark.benchmark(group="sro")
def test_benchmark_sro_saturated(benchmark):
    benchmark.pedantic(lambda: run_point("sro", 80_000), rounds=1, iterations=1)


if __name__ == "__main__":
    report(run_experiment())
