"""Meta tests: documentation stays consistent with the code on disk."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO_ROOT / name).read_text(encoding="utf-8")


class TestDesignDocIndex:
    def test_every_indexed_bench_file_exists(self):
        design = read("DESIGN.md")
        referenced = set(re.findall(r"`(benchmarks/bench_\w+\.py)`", design))
        assert referenced, "DESIGN.md lost its experiment index"
        for path in sorted(referenced):
            assert (REPO_ROOT / path).exists(), f"DESIGN.md references missing {path}"

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        on_disk = {
            f"benchmarks/{p.name}"
            for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
            # the simulator-performance group guards the harness, not a
            # paper experiment, so it lives outside the index
            if p.name != "bench_simulator_performance.py"
        }
        for path in sorted(on_disk):
            assert path in design, f"{path} missing from DESIGN.md's index"

    def test_experiments_doc_covers_every_experiment_id(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        ids = set(re.findall(r"^\| ([A-Z]\d) \|", design, flags=re.MULTILINE))
        assert len(ids) >= 15
        for experiment_id in sorted(ids):
            assert f"## {experiment_id} " in experiments or f"| {experiment_id} |" in experiments, (
                f"experiment {experiment_id} not recorded in EXPERIMENTS.md"
            )


class TestReadme:
    def test_mentions_all_example_scripts(self):
        readme = read("README.md")
        for script in (REPO_ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"{script.name} not documented in README"

    def test_quickstart_snippet_runs(self):
        """The README's code snippet must stay executable."""
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README lost its python snippet"
        snippet = blocks[0]
        namespace: dict = {}
        exec(snippet, namespace)  # raises if the public API drifted

    def test_documents_offline_install(self):
        assert "setup.py develop" in read("README.md")


class TestPackaging:
    def test_version_consistent(self):
        import repro

        pyproject = read("pyproject.toml")
        match = re.search(r'^version = "([^"]+)"', pyproject, flags=re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, f"repro.{name} missing"

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.sim", "repro.net", "repro.switch", "repro.core",
            "repro.protocols", "repro.crdt", "repro.sketch", "repro.nf",
            "repro.workload", "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    f"{module_name}.{name} missing"
                )
