"""[C2] Section 6.2 sync-bandwidth claim.

"For example, even if the switches synchronize 10 MB (about the full
memory size) every 1 ms, the total bandwidth consumed by the
synchronization would constitute 10MB / (1ms x 5Tbps) ~ 1% of the total
switch bandwidth."

Two parts:

* the paper's own arithmetic, swept over state size and period (the
  analytic table);
* a measured check: run an EWO deployment, count actual sync bytes on
  the wire, and confirm the measured sync rate matches state_bytes /
  period within protocol framing overhead.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_pct, print_header, print_table

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.headers import PROTO_SWISHMEM
from repro.net.topology import Topology, build_full_mesh
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

SWITCH_BANDWIDTH_BPS = 5e12  # 5 Tbps (paper's figure)


@dataclass
class AnalyticRow:
    state_mb: float
    period_ms: float
    fraction: float


@dataclass
class MeasuredRow:
    keys: int
    period_ms: float
    expected_bps: float
    measured_bps: float


def analytic_sweep() -> List[AnalyticRow]:
    rows = []
    for state_mb in (1.0, 5.0, 10.0):
        for period_ms in (0.5, 1.0, 5.0, 10.0):
            state_bits = state_mb * 1e6 * 8
            sync_bps = state_bits / (period_ms * 1e-3)
            rows.append(
                AnalyticRow(state_mb, period_ms, sync_bps / SWITCH_BANDWIDTH_BPS)
            )
    return rows


def measured_sync(
    keys: int = 200,
    period: float = 1e-3,
    duration: float = 0.05,
    metrics: MetricsRegistry = NULL_REGISTRY,
) -> MeasuredRow:
    sim = Simulator()
    topo = Topology(sim, SeededRng(51))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    deployment = SwiShmemDeployment(
        sim, topo, switches, sync_period=period, metrics=metrics
    )
    spec = deployment.declare(
        RegisterSpec(
            "state", Consistency.EWO, ewo_mode=EwoMode.COUNTER,
            capacity=keys, key_bytes=8, value_bytes=8, ewo_batch_size=10**9,
        )
    )
    # populate all keys once (batch size blocks broadcast; sync carries it)
    for i in range(keys):
        deployment.manager("s0").register_increment(spec, f"key{i}", 1)
    start_bytes = topo.total_bytes_sent()
    sim.run(until=duration)
    sync_bytes = topo.total_bytes_sent() - start_bytes
    measured_bps = sync_bytes * 8 / duration
    # expected: each live switch ships its known state once per period;
    # only s0's slots are populated -> per-sync payload ~ keys * entry
    entry_bytes = 8 + 8 + 4  # key + value + slot version
    expected_bps = 3 * (keys * entry_bytes) * 8 / period
    return MeasuredRow(keys, period * 1e3, expected_bps, measured_bps)


def run_experiment():
    # One shared registry across the measured runs, so the sidecar's
    # ewo.sync_bytes counters can be cross-checked against the wire math.
    registry = MetricsRegistry()
    return analytic_sweep(), [
        measured_sync(keys=100, period=1e-3, metrics=registry),
        measured_sync(keys=200, period=1e-3, metrics=registry),
        measured_sync(keys=200, period=2e-3, metrics=registry),
    ], registry


def report(analytic, measured, registry=None):
    print_header(
        "C2",
        "Section 6.2: periodic full-state sync bandwidth",
        "10 MB synchronized every 1 ms ~ 1% of a 5 Tbps switch",
    )
    print_table(
        ["state", "period", "sync bw / switch bw"],
        [
            (f"{r.state_mb:.0f} MB", f"{r.period_ms:.1f} ms", fmt_pct(r.fraction))
            for r in analytic
        ],
    )
    print_table(
        ["keys", "period", "expected sync rate", "measured wire rate", "framing overhead"],
        [
            (
                r.keys,
                f"{r.period_ms:.1f} ms",
                f"{r.expected_bps / 1e6:.2f} Mbps",
                f"{r.measured_bps / 1e6:.2f} Mbps",
                fmt_pct(r.measured_bps / r.expected_bps - 1.0),
            )
            for r in measured
        ],
    )
    emit_json(
        "C2",
        "Section 6.2: periodic full-state sync bandwidth",
        {"analytic": analytic, "measured": measured},
        registry=registry,
    )


@pytest.mark.benchmark(group="experiment")
def test_sync_bandwidth_shape_matches_paper(benchmark):
    analytic, measured, registry = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    report(analytic, measured, registry)
    # The paper's headline cell: 10 MB @ 1 ms ~ 1.6% (the paper rounds to ~1%).
    headline = next(r for r in analytic if r.state_mb == 10.0 and r.period_ms == 1.0)
    assert 0.005 < headline.fraction < 0.02
    # Measured wire rate tracks the analytic rate within framing overhead.
    for row in measured:
        assert row.measured_bps >= row.expected_bps  # framing only adds
        assert row.measured_bps < row.expected_bps * 1.8
    # Doubling the period halves the rate; doubling state doubles it.
    k100 = measured[0]
    k200 = measured[1]
    slow = measured[2]
    assert k200.measured_bps / k100.measured_bps == pytest.approx(2.0, rel=0.2)
    assert k200.measured_bps / slow.measured_bps == pytest.approx(2.0, rel=0.2)


@pytest.mark.benchmark(group="sync-bandwidth")
def test_benchmark_sync_bandwidth(benchmark):
    benchmark.pedantic(lambda: measured_sync(keys=100), rounds=1, iterations=1)


if __name__ == "__main__":
    report(*run_experiment())
