"""[N3] NAT + firewall correctness under switch failure.

Paper sections 3.2 and 4.1: connection tables "require strong
consistency, otherwise leading to broken client connections in case of
multi-path routing or switch failure" — "the connection-to-server
mapping … must be available … even if the original switch fails."

The experiment opens NAT'd connections through an NF cluster, fails the
cluster switch, and checks that established connections keep their
translation (no broken connections) while new connections continue to
be admitted.  The comparison baseline keeps the NAT table *local* to
the switch that created it — modeled by reading the failed switch's
share of mappings out of a non-replicated table — quantifying how many
connections a local-state NAT would have broken.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.nf.nat import NatNF

from benchmarks.common import fmt_pct, print_header, print_table
from tests.nfworld import build_nf_world

NAT_IP = "100.0.0.1"
CONNECTIONS = 24


@dataclass
class NatFailoverResult:
    connections_before: int
    broken_after_failure: int
    survived_fraction: float
    new_connections_after: int
    local_nat_would_break: int


def run_experiment(seed: int = 66) -> NatFailoverResult:
    world = build_nf_world(seed=seed, cluster_size=3, clients=4, servers=4)
    world.book.register(NAT_IP, "egress")
    nats = world.deployment.install_nf(NatNF, nat_ip=NAT_IP)
    sim = world.sim
    client, servers = world.clients[0], world.servers

    # open CONNECTIONS flows, staggered so handshakes complete
    for i in range(CONNECTIONS):
        server = servers[i % len(servers)]
        sim.schedule(
            i * 300e-6,
            lambda c=client, s=server, p=4000 + i: c.inject(
                make_tcp_packet(c.ip, s.ip, p, 80, flags=TcpFlags.SYN)
            ),
        )
    sim.run(until=CONNECTIONS * 300e-6 + 20e-3)
    spec = world.deployment.spec_by_name("nat_table")
    table_before = world.deployment.sro_stores(spec)[0]
    connections_before = sum(1 for key in table_before if key[0] == "f")

    # what a per-switch local NAT would lose: the ingress switch handled
    # every outbound first packet (it fronts the clients), so a local
    # table on a failed ingress would break everything it created.  For
    # the cluster-switch failure we model here, the local-state loss is
    # the victim's share of allocations.
    victim = world.cluster[1].name
    victim_nat = next(n for n in nats if n.manager.switch.name == victim)
    ingress_nat = next(n for n in nats if n.manager.switch.name == "ingress")
    local_loss = ingress_nat.ports_allocated  # local-NAT worst case share

    world.deployment.controller.note_failure_time(victim)
    world.deployment.fail_switch(victim)
    sim.run(until=sim.now + 10e-3)

    # replay one data packet per established connection, count breakage
    delivered_before = {s.name: len(s.received) for s in servers}
    for i in range(CONNECTIONS):
        server = servers[i % len(servers)]
        sim.schedule_at(
            sim.now + i * 100e-6,
            lambda c=client, s=server, p=4000 + i: c.inject(
                make_tcp_packet(c.ip, s.ip, p, 80, payload_size=32)
            ),
        )
    sim.run(until=sim.now + 30e-3)
    data_delivered = sum(len(s.received) - delivered_before[s.name] for s in servers)
    # responder ACKs inflate receives at the client, not the servers;
    # servers should have received exactly one data packet per connection
    broken = CONNECTIONS - min(CONNECTIONS, data_delivered)

    # new connections keep working after the failure
    new_before = sum(n.ports_allocated for n in nats if not n.manager.switch.failed)
    for i in range(4):
        server = servers[i % len(servers)]
        sim.schedule_at(
            sim.now + i * 300e-6,
            lambda c=client, s=server, p=9000 + i: c.inject(
                make_tcp_packet(c.ip, s.ip, p, 80, flags=TcpFlags.SYN)
            ),
        )
    sim.run(until=sim.now + 20e-3)
    new_after = sum(n.ports_allocated for n in nats if not n.manager.switch.failed)

    return NatFailoverResult(
        connections_before=connections_before,
        broken_after_failure=broken,
        survived_fraction=1.0 - broken / CONNECTIONS,
        new_connections_after=new_after - new_before,
        local_nat_would_break=local_loss,
    )


def report(result: NatFailoverResult) -> None:
    print_header(
        "N3",
        "NAT connection survival across a switch failure",
        "strongly consistent shared tables keep every established "
        "connection alive when a switch fails; per-switch local state "
        "breaks the failed switch's share",
    )
    print_table(
        ["connections", "broken after failure", "survived",
         "new conns admitted after", "local-NAT would break"],
        [(
            result.connections_before,
            result.broken_after_failure,
            fmt_pct(result.survived_fraction),
            result.new_connections_after,
            result.local_nat_would_break,
        )],
    )


@pytest.mark.benchmark(group="experiment")
def test_nat_failover_shape_matches_paper(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(result)
    assert result.connections_before == CONNECTIONS
    # SwiShmem: zero broken client connections.
    assert result.broken_after_failure == 0
    assert result.survived_fraction == 1.0
    # the service keeps admitting new connections
    assert result.new_connections_after == 4
    # a local-state NAT would have broken its creator's whole share
    assert result.local_nat_would_break > 0


@pytest.mark.benchmark(group="nf")
def test_benchmark_nat_failover(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
