"""Controller replicas: failure detection, chain repair, recovery, leases.

Paper section 6.3 assumes "a central controller can detect which
switches have failed" and sketches the two phases we implement:

**Failover** (automatic, driven by the detector):

* SRO — "we regain connectivity by reprogramming the routing of the
  failed switch neighbors" and repair the chain by excising the failed
  member.  In-flight writes time out at their writers' control planes
  and are retried against the repaired chain.
* EWO — "other than removing the failed switch from the multicast
  group, no explicit failover protocol is needed."

**Recovery** (operator-initiated via :meth:`recover_switch`):

* The switch restarts with volatile data-plane memory wiped.
* EWO — re-join the multicast groups and wait for periodic sync; CRDT
  state (including the rejoining switch's own counter slots) flows back
  from the other replicas.
* SRO — append to the chain in *catch-up* mode (gap-tolerant apply),
  wait a drain delay so in-flight old-chain writes settle, transfer a
  snapshot from a live chain member, and finally promote the new member
  to read tail.

**Failure detection** (``detection="heartbeat"``, the default) is real:
every switch's packet generator emits a :class:`Heartbeat` packet each
``heartbeat_period`` toward the *leader's host switch* — the switch
whose management port the acting controller hangs off.  Heartbeats ride
the data plane, so loss, partitions, and nemesis interference affect
them like any other packet; a switch whose beacons stop for longer than
``heartbeat_timeout`` is declared failed.  Detection latency is bounded
by ``heartbeat_period + heartbeat_timeout``.  Because the detector is
no longer an oracle, it can be *wrong*: a partitioned-but-alive switch
is excised (split-brain), and its stale in-flight chain updates are
rejected by epoch fencing (see ``ChainUpdate.epoch``).  When beacons
from a suspected switch resume, the controller counts a false positive
and re-admits it through the catch-up + snapshot path.

**High availability** (this module + :mod:`repro.protocols.election`):
the controller itself is replicated.  Each :class:`CentralController`
instance is one *replica* of the control plane; at most one holds the
leadership lease at a time and actually detects, repairs, and recovers.
A leader periodically extends its lease and broadcasts
:class:`~repro.protocols.messages.LeaseRenewal` to the standbys; when
renewals stop, a standby takes over after a margin provably past the
incumbent's self-fencing time, allocates a fresh controller epoch, and
*reconstructs* its view — chain membership, epochs, in-flight
recoveries, last-heard times — by querying the live switches rather
than trusting its own stale state.  Every configuration push travels as
an epoch-fenced :class:`~repro.protocols.messages.ControllerCommand`;
switches reject commands from a deposed leader.  An in-flight snapshot
transfer orphaned by a leader crash keeps streaming (it is driven by
the source switch's control plane), but its completion callback no-ops
at the dead leader; the successor finds the target still in catch-up
during reconstruction and re-drives the transfer to completion, so no
committed SRO write is lost across a controller failover.

Two narrow out-of-band assumptions remain, both documented properties
of a separate management network: configuration pushes, lease traffic,
and reconstruction queries reach live endpoints in ``config_latency``
(unless an explicit controller partition blocks them), and a leader
notices its *own* host switch dying via the management port (it then
re-homes to the next live switch).

``detection="oracle"`` restores the seed behaviour — periodic liveness
polling of the fail-stop flag with period ``detect_period`` — for
experiments that want detection latency out of the picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.chain import ChainDescriptor
from repro.obs.causal import CausalClock
from repro.protocols.messages import (
    ControllerCommand,
    GroupView,
    Heartbeat,
    LeaseRenewal,
    ReconstructQuery,
    ReconstructReply,
)
from repro.sim.engine import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment
    from repro.protocols.election import ControllerCluster

__all__ = ["CentralController", "FailureEvent", "RecoveryEvent"]

DEFAULT_DETECT_PERIOD = 500e-6
#: Heartbeat emission period per switch (heartbeat detection mode).
DEFAULT_HEARTBEAT_PERIOD = 200e-6
#: Declare a switch failed after this long without a beacon.
DEFAULT_HEARTBEAT_TIMEOUT = 600e-6
#: Latency for the controller to push one config update to one switch.
DEFAULT_CONFIG_LATENCY = 100e-6
#: Wait for in-flight old-chain writes to settle before snapshotting.
DEFAULT_DRAIN_DELAY = 5e-3
#: Give up a recovery after this many snapshot-transfer attempts.
MAX_TRANSFER_ATTEMPTS = 3


@dataclass
class FailureEvent:
    """Bookkeeping for one detected switch failure."""

    switch: str
    failed_at: float
    detected_at: float
    chains_repaired: List[int] = field(default_factory=list)
    multicast_groups_updated: int = 0
    #: True when the suspected switch was actually alive at detection
    #: time (heartbeat loss / partition, not a crash).
    false_positive: bool = False
    #: Controller epoch under which the failure was detected.
    epoch: int = 0

    @property
    def detection_latency(self) -> float:
        return self.detected_at - self.failed_at


@dataclass
class RecoveryEvent:
    """Bookkeeping for one switch recovery (or false-positive re-admission)."""

    switch: str
    started_at: float
    ewo_rejoined_at: Optional[float] = None
    promoted_at: Dict[int, float] = field(default_factory=dict)
    #: True when this is a re-admission of a suspected-but-alive switch.
    readmission: bool = False
    #: True when a successor leader re-drove a recovery it found
    #: stranded mid-catch-up during reconstruction.
    redriven: bool = False
    #: Snapshot-transfer attempts per group (retries via on_failure).
    transfer_attempts: Dict[int, int] = field(default_factory=dict)
    #: Controller epoch under which the recovery was initiated.
    epoch: int = 0
    #: Causal context rooting this recovery's span subtree.
    trace: Any = None

    def sro_recovery_time(self, group_id: int) -> Optional[float]:
        promoted = self.promoted_at.get(group_id)
        if promoted is None:
            return None
        return promoted - self.started_at


class CentralController:
    """One controller replica: detector + reconfiguration engine.

    Constructed and owned by a
    :class:`~repro.protocols.election.ControllerCluster`; only while
    holding the leadership lease does a replica act on the deployment.
    Every mutating path checks :meth:`_is_active`, so events scheduled
    by a since-deposed leader fire as harmless no-ops.
    """

    def __init__(
        self,
        cluster: "ControllerCluster",
        replica_id: int,
    ) -> None:
        self.cluster = cluster
        self.deployment: "SwiShmemDeployment" = cluster.deployment
        self.sim = cluster.sim
        self.replica_id = replica_id
        # Config mirrored from the cluster (uniform across replicas).
        self.detect_period = cluster.detect_period
        self.config_latency = cluster.config_latency
        self.drain_delay = cluster.drain_delay
        self.detection = cluster.detection
        self.heartbeat_period = cluster.heartbeat_period
        self.heartbeat_timeout = cluster.heartbeat_timeout
        # Leadership state.
        self.role = "standby"
        self.failed = False
        self.epoch = 0
        self._seen_epoch = 0
        self.lease_expires = float("-inf")
        #: Believed expiry of the current leader's lease (from renewals).
        self.lease_view = self.sim.now + cluster.lease_duration
        self.reconstructing = False
        self._reconstruct_started = 0.0
        self._reconstruct_replies: Dict[str, ReconstructReply] = {}
        self._next_renew = 0.0
        self._stopped = False
        # Detection / repair state (leader-scoped; rebuilt on takeover).
        names = self.deployment.switch_names
        self.host: str = names[replica_id % len(names)]
        self._known_failed: Set[str] = set()
        self._known_down_links: Set[frozenset] = set()
        self.link_events = 0
        self.failures: List[FailureEvent] = []
        self.recoveries: List[RecoveryEvent] = []
        #: Recoveries abandoned after MAX_TRANSFER_ATTEMPTS: (group, target, time).
        self.aborted_recoveries: List[Tuple[int, str, float]] = []
        #: (group, target) -> recovery generation.  Bumped every time a
        #: fresh catch-up is initiated, so snapshot events scheduled by a
        #: superseded recovery are ignored when they fire.
        self._recovery_gen: Dict[Tuple[int, str], int] = {}
        self.heartbeats_received = 0
        self.false_positives = 0
        self.rehomes = 0
        self._last_heard: Dict[str, float] = {}
        self._last_beacon = float("-inf")
        #: All deadlines are measured from max(last beacon, this base);
        #: reset on (re-)homing and takeover for a fresh grace window.
        self._deadline_base = self.sim.now
        # Live telemetry (repro.obs); instruments are registry-shared
        # across replicas, so they aggregate naturally.
        # Causal tracing: one Lamport clock per replica; ``trace_ctx``
        # is the root span of the current reign, set on activation.
        self.node = f"ctl{replica_id}"
        self.causal = CausalClock(self.node)
        self.trace_ctx: Any = None
        self._bind_observability()
        period = (
            self.heartbeat_period / 4
            if self.detection == "heartbeat"
            else self.detect_period
        )
        self._process = Process(
            self.sim,
            period,
            self._tick,
            name=f"controller:replica-{replica_id}",
        ).start()

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks (construction
        and ``Deployment.rebind_observability``)."""
        self._flightrec = self.deployment.flight_recorder
        metrics = self.deployment.metrics
        self._m_heartbeats = metrics.counter("controller.heartbeats", "controller")
        self._m_failures = metrics.counter("controller.failures_detected", "controller")
        self._m_false_positives = metrics.counter(
            "controller.false_positives", "controller"
        )
        self._m_recoveries = metrics.counter("controller.recoveries", "controller")
        self._m_detection_latency = metrics.histogram(
            "controller.detection_latency_seconds", "controller"
        )

    # ------------------------------------------------------------------
    # Leadership
    # ------------------------------------------------------------------
    @property
    def detection_bound(self) -> float:
        """Worst-case detection latency for a clean fail-stop (while a
        leader is continuously active; controller failover adds
        :attr:`ControllerCluster.failover_bound`)."""
        if self.detection == "heartbeat":
            return self.heartbeat_period + self.heartbeat_timeout
        return self.detect_period

    def _is_active(self) -> bool:
        """Whether this replica may act on the deployment *right now*:
        it leads, its lease is unexpired, and it can reach the fabric."""
        return (
            not self.failed
            and not self._stopped
            and self.role == "leader"
            and self.sim.now < self.lease_expires
            and not self.cluster.mgmt_blocked(self)
        )

    @property
    def is_active_leader(self) -> bool:
        return self._is_active()

    def _tick(self) -> None:
        if self.failed or self._stopped:
            return
        if self.role == "leader":
            if not self._lease_tick():
                return
            if self.reconstructing or self.cluster.mgmt_blocked(self):
                return
            if self.detection == "heartbeat":
                self._check_liveness()
            else:
                self._poll()
        else:
            self._standby_tick()

    def _lease_tick(self) -> bool:
        """Extend/advertise the lease; returns False after stepping down."""
        now = self.sim.now
        if now >= self.lease_expires:
            self._depose("lease-expired")
            return False
        if now >= self._next_renew:
            if self._lease_health_ok():
                self.lease_expires = now + self.cluster.lease_duration
            self._next_renew = now + self.cluster.renew_period
            self._broadcast_renewal()
        return True

    def _lease_health_ok(self) -> bool:
        """Whether the leader may extend its own lease this round.

        A leader that cannot reach the fabric must *not* extend: its
        lease runs out, it self-fences, and a (hopefully connected)
        standby takes over.  Reachability evidence is the management
        path being unblocked plus — in heartbeat mode — at least one
        switch beacon within the detection bound.  A solo replica has
        no standby to defer to, so self-fencing buys nothing and its
        lease self-extends unconditionally (the seed behaviour).
        """
        if len(self.cluster.replicas) == 1:
            return True
        if self.cluster.mgmt_blocked(self):
            return False
        if self.detection != "heartbeat":
            return True
        reference = max(self._last_beacon, self._deadline_base)
        return self.sim.now - reference <= self.detection_bound

    def _broadcast_renewal(self) -> None:
        if self.cluster.mgmt_blocked(self):
            return
        renewal = LeaseRenewal(
            epoch=self.epoch,
            replica=self.replica_id,
            expires_at=self.lease_expires,
            sent_at=self.sim.now,
        )
        for peer in self.cluster.replicas:
            if peer is self or peer.failed:
                continue
            self.sim.schedule(
                self.config_latency,
                self.cluster.deliver_renewal,
                peer,
                renewal,
                label="controller:lease-renewal",
            )

    def on_lease_renewal(self, renewal: LeaseRenewal) -> None:
        if self.failed or self._stopped:
            return
        if renewal.epoch < self._seen_epoch:
            return  # stale advertisement from a deposed leader
        self._seen_epoch = renewal.epoch
        if (
            self.role == "leader"
            and renewal.replica != self.replica_id
            and renewal.epoch > self.epoch
        ):
            self._depose("superseded")
        self.lease_view = max(self.lease_view, renewal.expires_at)

    def _standby_tick(self) -> None:
        """Candidacy check: promote once the incumbent's advertised
        lease is provably expired, rank-staggered so lower replica ids
        go first and a successful takeover suppresses the rest."""
        deadline = (
            self.lease_view
            + self.cluster.takeover_margin
            + self.replica_id * self.cluster.takeover_stagger
        )
        if self.sim.now >= deadline:
            self.cluster.activate(self)

    def _depose(self, reason: str) -> None:
        if self.role != "leader":
            return
        self.role = "standby"
        self.reconstructing = False
        self.lease_expires = float("-inf")
        # Back off a full lease before self-candidacy, so a healthier
        # replica (or a healed fabric) gets the first shot.
        self.lease_view = max(self.lease_view, self.sim.now + self.cluster.lease_duration)
        self.cluster.on_leader_deposed(self, reason)

    # ------------------------------------------------------------------
    # Takeover: state reconstruction from the switches
    # ------------------------------------------------------------------
    def begin_reconstruction(self) -> None:
        """Query every switch for its replication view; distrust local
        state inherited from a previous reign or observed second-hand."""
        self.reconstructing = True
        self._reconstruct_started = self.sim.now
        self._reconstruct_replies = {}
        self._known_failed = set()
        self._last_heard = {}
        self._last_beacon = float("-inf")
        rc_ctx = (
            self.causal.child(self.trace_ctx) if self.trace_ctx is not None else None
        )
        if self._flightrec.enabled and rc_ctx is not None:
            self._flightrec.record(
                rc_ctx,
                "controller.reconstruct.begin",
                self.node,
                self.sim.now,
                epoch=self.epoch,
            )
        query = ReconstructQuery(
            epoch=self.epoch, replica=self.replica_id, sent_at=self.sim.now, trace=rc_ctx
        )
        if not self.cluster.mgmt_blocked(self):
            for name in self.deployment.switch_names:
                self.sim.schedule(
                    self.config_latency,
                    self._answer_query,
                    name,
                    query,
                    label="controller:reconstruct-query",
                )
        # Replies land at 2 x config_latency; close the window just after.
        self.sim.schedule(
            3 * self.config_latency,
            self._finish_reconstruction,
            self.epoch,
            label="controller:reconstruct-done",
        )

    def _answer_query(self, name: str, query: ReconstructQuery) -> None:
        """Runs at the switch's management port: snapshot its current
        chain view and send it back.  Answering also installs the new
        controller epoch, fencing any straggler commands from the old
        leader even before the successor issues its first command."""
        if self._stopped or self.cluster.mgmt_blocked(self):
            return
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            return
        manager.observe_controller_epoch(query.epoch)
        answer_ctx = (
            manager.causal.child(query.trace) if query.trace is not None else None
        )
        if self._flightrec.enabled and answer_ctx is not None:
            self._flightrec.record(
                answer_ctx,
                "controller.reconstruct.answer",
                name,
                self.sim.now,
                epoch=query.epoch,
            )
        views = tuple(
            GroupView(
                group=gid,
                chain_version=state.chain.version,
                members=state.chain.members,
                catching_up=state.catching_up,
            )
            for gid, state in sorted(manager.sro.groups.items())
        )
        reply = ReconstructReply(
            switch=name,
            epoch=query.epoch,
            groups=views,
            sent_at=self.sim.now,
            trace=answer_ctx,
        )
        self.sim.schedule(
            self.config_latency,
            self._on_reconstruct_reply,
            reply,
            label="controller:reconstruct-reply",
        )

    def _on_reconstruct_reply(self, reply: ReconstructReply) -> None:
        if (
            self.failed
            or self._stopped
            or self.role != "leader"
            or reply.epoch != self.epoch
            or self.cluster.mgmt_blocked(self)
        ):
            return
        self._reconstruct_replies[reply.switch] = reply
        self._last_heard[reply.switch] = self.sim.now
        self._last_beacon = self.sim.now
        if self._flightrec.enabled and reply.trace is not None:
            self._flightrec.record(
                self.causal.child(reply.trace),
                "controller.reconstruct.reply",
                self.node,
                self.sim.now,
                switch=reply.switch,
                epoch=reply.epoch,
                groups=len(reply.groups),
            )

    def _finish_reconstruction(self, epoch: int) -> None:
        if (
            self.failed
            or self._stopped
            or self.role != "leader"
            or self.epoch != epoch
        ):
            return
        self.reconstructing = False
        replies = self._reconstruct_replies
        if not self._is_active() or (
            not replies and not self.cluster.has_pending_recoveries()
        ):
            # The fabric is unreachable (management partition, or every
            # switch down with nothing queued to revive): abdicate
            # rather than excising the whole deployment on no evidence.
            # A later candidacy retries once conditions change.
            self._depose("reconstruct-failed")
            return
        now = self.sim.now
        deployment = self.deployment
        # 1. Adopt any chain descriptor newer than our stale local copy
        #    (the previous leader reconfigured after our last update).
        for name in sorted(replies):
            for view in replies[name].groups:
                chain = deployment.chains.get(view.group)
                if chain is not None and view.chain_version > chain.version:
                    deployment.chains[view.group] = ChainDescriptor(
                        chain_id=view.group,
                        members=view.members,
                        version=view.chain_version,
                    )
        # 2. Non-repliers are unreachable: excise them.  No FailureEvent
        #    — failed_at is unknowable here; the detector re-reports if
        #    they come back and fail again.
        for name in deployment.switch_names:
            if name in replies:
                continue
            self._known_failed.add(name)
            for group_id, chain in sorted(deployment.chains.items()):
                if name in chain and len(chain) > 1:
                    self._push_chain(chain.without(name))
            deployment.multicast.remove_member_everywhere(name)
            deployment.failover.fail_transfers_from(name)
        deployment.routing.recompute()
        if deployment.manager(self.host).switch.failed:
            self._rehome()
        # 3. Repliers: re-admit any the old leader had excised (they are
        #    demonstrably alive), and re-drive recoveries stranded in
        #    catch-up when the old leader died mid-snapshot-transfer.
        for name in sorted(replies):
            reply = replies[name]
            manager = deployment.manager(name)
            excised = any(
                name not in deployment.chains[v.group].members
                for v in reply.groups
                if v.group in deployment.chains
            ) or any(
                name not in deployment.multicast.get(gid).members
                for gid in manager.ewo.groups
                # A re-level promotion deletes the group's multicast
                # fan-out; a switch still holding EWO state for it is
                # stale, not excised — reconciliation handles it.
                if deployment.multicast.has(gid)
            )
            if excised:
                self._readmit(name)
                continue
            redrive = [
                v.group
                for v in reply.groups
                if v.group in deployment.chains
                and v.catching_up
                and name in deployment.chains[v.group].members
            ]
            if redrive:
                event = RecoveryEvent(
                    switch=name, started_at=now, redriven=True, epoch=self.epoch
                )
                event.trace = (
                    self.causal.child(self.trace_ctx)
                    if self.trace_ctx is not None
                    else None
                )
                if self._flightrec.enabled and event.trace is not None:
                    self._flightrec.record(
                        event.trace,
                        "controller.recovery.redrive",
                        self.node,
                        self.sim.now,
                        switch=name,
                        groups=",".join(str(g) for g in redrive),
                        epoch=self.epoch,
                    )
                self.recoveries.append(event)
                self._m_recoveries.inc()
                for group_id in redrive:
                    gen = self._recovery_gen.get((group_id, name), 0) + 1
                    self._recovery_gen[(group_id, name)] = gen
                    self.sim.schedule(
                        self.drain_delay,
                        self._start_snapshot,
                        group_id,
                        name,
                        event,
                        1,
                        frozenset(),
                        gen,
                        label="controller:snapshot-start",
                    )
            # Refresh switches holding descriptors older than ours.
            for view in reply.groups:
                chain = deployment.chains.get(view.group)
                if chain is not None and view.chain_version < chain.version:
                    self._send_command(
                        manager,
                        ControllerCommand(
                            epoch=self.epoch,
                            kind="set_chain",
                            group=view.group,
                            payload=chain,
                        ),
                    )
        self.cluster.note_reconstruction(self, now - self._reconstruct_started)
        self.cluster.drain_pending_recoveries(self)
        # Resume (or roll back) any re-level handoff the dead leader
        # left mid-flight, then drain re-level requests queued while the
        # deployment was leaderless.
        deployment.releveler.on_leader_ready(self)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def _poll(self) -> None:
        """Oracle detection: read the fail-stop flag directly."""
        for switch in self.deployment.switches:
            if switch.failed and switch.name not in self._known_failed:
                self._on_failure_detected(switch.name)
        self._poll_links()

    def on_heartbeat(self, beacon: Heartbeat) -> None:
        """A beacon reached this replica's management port."""
        self.heartbeats_received += 1
        self._m_heartbeats.inc()
        self._last_heard[beacon.origin] = self.sim.now
        self._last_beacon = self.sim.now
        if self.role != "leader":
            return
        if beacon.origin in self._known_failed:
            if self.deployment.manager(beacon.origin).switch.failed:
                # A stale beacon (delayed in flight) from a switch that
                # really is down — not evidence of life.
                return
            self.false_positives += 1
            self._m_false_positives.inc()
            self._readmit(beacon.origin)

    def _check_liveness(self) -> None:
        """Periodic detector sweep over heartbeat deadlines."""
        host_switch = self.deployment.manager(self.host).switch
        if host_switch.failed:
            # Management port went dark: the host itself died.
            if self.host not in self._known_failed:
                self._on_failure_detected(self.host)  # re-homes as a side effect
            if self.deployment.manager(self.host).switch.failed:
                self._rehome()  # earlier re-home found no live switch; retry
        now = self.sim.now
        for name in self.deployment.switch_names:
            if name in self._known_failed:
                continue
            last = max(self._last_heard.get(name, 0.0), self._deadline_base)
            if now - last > self.heartbeat_timeout:
                self._on_failure_detected(name)
        self._poll_links()

    def _rehome(self) -> None:
        """Move this replica's management attachment to a live switch."""
        for name in self.deployment.switch_names:
            manager = self.deployment.manager(name)
            if not manager.switch.failed and name not in self._known_failed:
                self.host = name
                self.rehomes += 1
                # Fresh grace window: beacons in flight toward the old
                # host are gone; don't declare everyone dead at once.
                self._deadline_base = self.sim.now
                return
        # No live switch left — nothing to attach to (detector keeps
        # sweeping; recovery will re-home via recover_switch).

    def _poll_links(self) -> None:
        """Link failures only require re-routing (paper 6.3: 'links …
        may fail'; the replication protocols themselves retry/resync
        over whatever paths remain)."""
        down_now = {
            frozenset((link.a.name, link.b.name))
            for link in self.deployment.topo.links
            if not link.up
        }
        if down_now != self._known_down_links:
            self._known_down_links = down_now
            self.link_events += 1
            self.deployment.routing.recompute()

    def _on_failure_detected(self, name: str) -> None:
        if not self._is_active():
            return
        self._known_failed.add(name)
        event = FailureEvent(
            switch=name,
            failed_at=self.cluster._fail_times.get(name, self.sim.now),
            detected_at=self.sim.now,
            false_positive=not self.deployment.manager(name).switch.failed,
            epoch=self.epoch,
        )
        self.failures.append(event)
        self._m_failures.inc()
        if not event.false_positive:
            self._m_detection_latency.observe(event.detection_latency)
        fail_ctx = (
            self.causal.child(self.trace_ctx) if self.trace_ctx is not None else None
        )
        if self._flightrec.enabled and fail_ctx is not None:
            self._flightrec.record(
                fail_ctx,
                "controller.failure.detect",
                self.node,
                self.sim.now,
                switch=name,
                false_positive=event.false_positive,
                epoch=self.epoch,
            )
        # "First, we regain connectivity by reprogramming the routing of
        # the failed switch neighbors."
        self.deployment.routing.recompute()
        # SRO: excise the member from every chain it belongs to.  The
        # bumped descriptor version doubles as the fencing epoch: updates
        # sequenced under the old configuration are rejected by members
        # that installed this one.
        for group_id, chain in list(self.deployment.chains.items()):
            if name in chain and len(chain) > 1:
                repaired = chain.without(name)
                self._push_chain(repaired, parent=fail_ctx)
                event.chains_repaired.append(group_id)
        # EWO: drop from every multicast group; nothing else needed.
        event.multicast_groups_updated = (
            self.deployment.multicast.remove_member_everywhere(name)
        )
        # Snapshot transfers sourced at the dead switch can't finish —
        # abandon them now so their on_failure callbacks pick a new
        # source (the dead CPU would otherwise swallow its own timers).
        self.deployment.failover.fail_transfers_from(name)
        if name == self.host and self.detection == "heartbeat":
            self._rehome()

    # ------------------------------------------------------------------
    # Configuration distribution (epoch-fenced commands)
    # ------------------------------------------------------------------
    def _push_chain(self, chain: ChainDescriptor, parent: Any = None) -> None:
        """Distribute a descriptor to all live switches' control planes."""
        if not self._is_active():
            return
        self.deployment.chains[chain.chain_id] = chain
        for manager in self.deployment.managers.values():
            if manager.switch.failed:
                continue
            if chain.chain_id not in manager.sro.groups:
                continue
            self._send_command(
                manager,
                ControllerCommand(
                    epoch=self.epoch,
                    kind="set_chain",
                    group=chain.chain_id,
                    payload=chain,
                ),
                parent=parent,
            )

    def _send_command(
        self, manager, command: ControllerCommand, parent: Any = None
    ) -> None:
        if self.cluster.mgmt_blocked(self):
            return
        parent = parent if parent is not None else self.trace_ctx
        if parent is not None:
            # ControllerCommand is frozen; re-create it with the send
            # span stamped (trace is excluded from eq/wire_size).
            command = replace(command, trace=self.causal.child(parent))
            if self._flightrec.enabled:
                self._flightrec.record(
                    command.trace,
                    "controller.command.send",
                    self.node,
                    self.sim.now,
                    group=command.group,
                    kind=command.kind,
                    epoch=command.epoch,
                    target=manager.switch.name,
                )
        self.sim.schedule(
            self.config_latency,
            self._deliver_command,
            manager,
            command,
            label="controller:command",
        )

    def _deliver_command(self, manager, command: ControllerCommand) -> None:
        # A partition that started after the send still swallows the
        # in-flight command (the management path is down at delivery).
        if manager.switch.failed or self.cluster.mgmt_blocked(self):
            return
        manager.apply_controller_command(command)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_switch(self, name: str, wipe_state: bool = True) -> RecoveryEvent:
        """Bring a failed switch back into the deployment.

        ``wipe_state=True`` models a restarted switch whose volatile
        data-plane registers are empty (the realistic case).
        """
        manager = self.deployment.manager(name)
        switch = manager.switch
        if not switch.failed:
            raise ValueError(f"{name} has not failed; nothing to recover")
        event = RecoveryEvent(switch=name, started_at=self.sim.now, epoch=self.epoch)
        event.trace = (
            self.causal.child(self.trace_ctx) if self.trace_ctx is not None else None
        )
        if self._flightrec.enabled and event.trace is not None:
            self._flightrec.record(
                event.trace,
                "controller.recovery.begin",
                self.node,
                self.sim.now,
                switch=name,
                wiped=wipe_state,
                epoch=self.epoch,
            )
        self.recoveries.append(event)
        self._m_recoveries.inc()
        switch.recover()
        self._known_failed.discard(name)
        self.cluster._fail_times.pop(name, None)
        self._last_heard[name] = self.sim.now
        if (
            self.detection == "heartbeat"
            and self.deployment.manager(self.host).switch.failed
        ):
            self._rehome()
        self.deployment.routing.recompute()
        if wipe_state:
            self._wipe_state(manager)
        if self.detection == "heartbeat":
            self.cluster.restart_heartbeat_for(name)
        # EWO: rejoin multicast groups and restart the sync generators.
        # Groups whose multicast was deleted by a re-level promotion are
        # skipped here; reconciliation below re-levels the stale engine.
        rejoined = False
        for group_id, state in manager.ewo.groups.items():
            if not self.deployment.multicast.has(group_id):
                continue
            self.deployment.multicast.get(group_id).add(name)
            manager.restart_ewo_sync(group_id)
            rejoined = True
        if rejoined:
            event.ewo_rejoined_at = self.sim.now
        self._rejoin_chains(name, event, wiped=wipe_state)
        # A switch that was down across a re-level still runs the old
        # engine for the group; re-send it the switch step.
        self.deployment.releveler.reconcile_recovery(self, manager)
        return event

    def _readmit(self, name: str) -> None:
        """A suspected-but-alive switch proved it is up: bring it back.

        Its data-plane state is intact but it missed every chain update
        committed while it was excised, so it rejoins through the same
        catch-up + snapshot path as a recovering switch — minus the wipe
        and the process restarts.
        """
        self._known_failed.discard(name)
        self.cluster._fail_times.pop(name, None)
        event = RecoveryEvent(
            switch=name, started_at=self.sim.now, readmission=True, epoch=self.epoch
        )
        event.trace = (
            self.causal.child(self.trace_ctx) if self.trace_ctx is not None else None
        )
        if self._flightrec.enabled and event.trace is not None:
            self._flightrec.record(
                event.trace,
                "controller.recovery.begin",
                self.node,
                self.sim.now,
                switch=name,
                readmission=True,
                epoch=self.epoch,
            )
        self.recoveries.append(event)
        self._m_recoveries.inc()
        self.deployment.routing.recompute()
        manager = self.deployment.manager(name)
        rejoined = False
        for group_id in manager.ewo.groups:
            if not self.deployment.multicast.has(group_id):
                # Deleted by a re-level promotion while this switch was
                # excised; reconciliation re-levels it instead.
                continue
            group = self.deployment.multicast.get(group_id)
            if name not in group.members:
                group.add(name)
            rejoined = True
        if rejoined:
            event.ewo_rejoined_at = self.sim.now
        self._rejoin_chains(name, event, wiped=False)
        self.deployment.releveler.reconcile_recovery(self, manager)

    def _rejoin_chains(self, name: str, event: RecoveryEvent, wiped: bool) -> None:
        """Re-append ``name`` to every chain it replicates, in catch-up
        mode, and schedule the drain-delayed snapshot transfer."""
        manager = self.deployment.manager(name)
        for group_id in list(manager.sro.groups):
            chain = self.deployment.chains.get(group_id)
            if chain is None:
                continue
            if name in chain:
                if len(chain) == 1 or not wiped:
                    # Sole member (no one to copy from), or an undetected
                    # failure with state intact — nothing to do.
                    continue
                # Undetected failure + wiped state: if we stayed in place
                # the empty replica would see every next update as a gap
                # and wedge.  Excise and re-append so it catches up.
                appended = chain.without(name).with_appended(name)
            else:
                appended = chain.with_appended(name)
            self._send_command(
                manager,
                ControllerCommand(
                    epoch=self.epoch,
                    kind="set_catching_up",
                    group=group_id,
                    payload=True,
                ),
                parent=event.trace,
            )
            self._push_chain(appended, parent=event.trace)
            gen = self._recovery_gen.get((group_id, name), 0) + 1
            self._recovery_gen[(group_id, name)] = gen
            # Let in-flight old-chain writes settle before snapshotting,
            # so the snapshot provably covers every committed write that
            # did not flow through the new member.
            self.sim.schedule(
                self.drain_delay,
                self._start_snapshot,
                group_id,
                name,
                event,
                1,
                frozenset(),
                gen,
                label="controller:snapshot-start",
            )

    def _wipe_state(self, manager) -> None:
        for state in manager.sro.groups.values():
            state.store.clear()
            slots = state.pending.slots
            state.pending._next_seq = [0] * slots
            state.pending._applied_seq = [0] * slots
            state.pending._pending = [False] * slots
            state.pending._pending_seq = [0] * slots
            state.dedup.clear()
        for state in manager.ewo.groups.values():
            state.vectors.clear()
            if state.cells is not None:
                state.cells.clear()
            if state.sets is not None:
                state.sets.clear()
            state._pending_entries.clear()

    def _is_full_member(self, group_id: int, name: str) -> bool:
        """A member that provably holds every committed write: live and
        not itself in catch-up."""
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            return False
        state = manager.sro.groups.get(group_id)
        return state is not None and not state.catching_up

    def _abort_recovery(self, group_id: int, target: str, attempt: int) -> None:
        self.aborted_recoveries.append((group_id, target, self.sim.now))
        self.deployment.tracer.emit(
            self.sim.now,
            "controller",
            target,
            "recovery-abort",
            group=group_id,
            attempts=attempt,
        )

    def _start_snapshot(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        attempt: int = 1,
        exclude: frozenset = frozenset(),
        gen: Optional[int] = None,
    ) -> None:
        if not self._is_active():
            # Deposed (or crashed) since scheduling this.  If the target
            # is still catching up, the successor's reconstruction finds
            # it and re-drives the transfer under its own generation.
            return
        if (
            gen is not None
            and gen != self._recovery_gen.get((group_id, target))
        ):
            # Scheduled by a recovery that has since been superseded
            # (the target was excised and readmitted in between); the
            # newer recovery scheduled its own snapshot.
            return
        chain = self.deployment.chains[group_id]
        if target not in chain or self.deployment.manager(target).switch.failed:
            # The target failed again (or was excised) mid-recovery; a
            # future recover_switch will restart the whole dance.
            return
        candidates = [
            member
            for member in chain.members
            if member != target
            and not self.deployment.manager(member).switch.failed
        ]
        if not candidates:
            # Degenerate chain: the target is the only live member.
            self._promote(group_id, target, event, gen)
            return
        usable = [member for member in candidates if member not in exclude]
        if not usable:
            usable = candidates  # everyone failed us once; try again anyway
        # Only *full* members may serve the snapshot: a replica that is
        # itself catching up can predate writes committed while it was
        # excised, and copying from it would silently launder those
        # committed writes out of the chain.
        full = [member for member in usable if self._is_full_member(group_id, member)]
        if not full:
            full = [m for m in candidates if self._is_full_member(group_id, m)]
        if not full:
            # Every live candidate is still catching up.  Defer until
            # one of their own transfers completes; abort (logged) if
            # that never happens.
            if attempt >= MAX_TRANSFER_ATTEMPTS:
                self._abort_recovery(group_id, target, attempt)
                return
            self.sim.schedule(
                self.drain_delay,
                self._start_snapshot,
                group_id,
                target,
                event,
                attempt + 1,
                exclude,
                gen,
                label="controller:snapshot-defer",
            )
            return
        # Prefer the read tail — it serves reads, so it provably holds
        # every committed value.
        source = chain.read_tail if chain.read_tail in full else full[0]
        event.transfer_attempts[group_id] = attempt
        snap_ctx = (
            self.causal.child(event.trace) if event.trace is not None else None
        )
        if self._flightrec.enabled and snap_ctx is not None:
            self._flightrec.record(
                snap_ctx,
                "controller.snapshot.start",
                self.node,
                self.sim.now,
                group=group_id,
                source=source,
                target=target,
                attempt=attempt,
            )
        self.deployment.failover.start_transfer(
            group_id,
            source=source,
            target=target,
            on_complete=lambda: self._promote(group_id, target, event, gen),
            on_failure=lambda transfer: self._on_transfer_failed(
                group_id, target, event, attempt, exclude, gen, transfer
            ),
            trace=snap_ctx,
        )

    def _on_transfer_failed(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        attempt: int,
        exclude: frozenset,
        gen: Optional[int],
        transfer,
    ) -> None:
        """A snapshot transfer died (source failed / retry budget spent)."""
        if not self._is_active():
            return
        if self.deployment.manager(target).switch.failed:
            return  # the target itself died; nothing to salvage here
        if attempt >= MAX_TRANSFER_ATTEMPTS:
            self._abort_recovery(group_id, target, attempt)
            return
        self.sim.schedule(
            self.config_latency,
            self._start_snapshot,
            group_id,
            target,
            event,
            attempt + 1,
            frozenset(exclude | {transfer.source}),
            gen,
            label="controller:snapshot-retry",
        )

    def _promote(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        gen: Optional[int] = None,
    ) -> None:
        """Catch-up finished: the new member replaces the read tail.

        If the leader that started the transfer has since been deposed,
        this is a no-op: the target stays in catch-up and the successor
        re-drives the transfer during reconstruction, so a half-promoted
        chain never leaks from a dead leader's callback.
        """
        if not self._is_active():
            return
        if (
            gen is not None
            and gen != self._recovery_gen.get((group_id, target))
        ):
            return  # transfer belonged to a superseded recovery
        promote_ctx = (
            self.causal.child(event.trace) if event.trace is not None else None
        )
        if self._flightrec.enabled and promote_ctx is not None:
            self._flightrec.record(
                promote_ctx,
                "controller.promote",
                self.node,
                self.sim.now,
                group=group_id,
                target=target,
                epoch=self.epoch,
            )
        chain = self.deployment.chains[group_id]
        if target in chain and chain.read_tail != target:
            self._push_chain(chain.promoted(), parent=promote_ctx)
        manager = self.deployment.manager(target)
        if not manager.switch.failed:
            self._send_command(
                manager,
                ControllerCommand(
                    epoch=self.epoch,
                    kind="set_catching_up",
                    group=group_id,
                    payload=False,
                ),
                parent=promote_ctx,
            )
        event.promoted_at[group_id] = self.sim.now

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stopped = True
        self._process.stop()

    def last_failure(self) -> Optional[FailureEvent]:
        return self.failures[-1] if self.failures else None
