"""Tests for controller high availability (protocols.election): leases,
epoch fencing, takeover reconstruction, and failover while a recovery is
mid-flight — the control plane half of paper section 6.3, which the
paper leaves as a single point of failure."""

from __future__ import annotations

import pytest

from repro.chaos import InvariantSuite
from repro.core.registers import Consistency, RegisterSpec
from repro.protocols.election import ControllerCluster, LeaseConfig
from repro.protocols.messages import ControllerCommand


def fail_and_note(deployment, name):
    deployment.controller.note_failure_time(name)
    deployment.fail_switch(name)


class TestLeaseBasics:
    def test_single_replica_is_seed_compatible(self, make_deployment):
        """A one-replica cluster behaves like the old CentralController:
        leader from t=0, never deposed, solo lease self-extends."""
        dep, _, _ = make_deployment(3)
        cluster = dep.controller
        assert isinstance(cluster, ControllerCluster)
        assert len(cluster.replicas) == 1
        dep.sim.run(until=0.1)  # many lease durations
        assert cluster.active_leader() is cluster.replicas[0]
        assert cluster.leader_changes == 1
        assert cluster.lease_expiries == 0

    def test_replica_zero_leads_initially(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        cluster = dep.controller
        assert len(cluster.replicas) == 3
        leader = cluster.active_leader()
        assert leader is not None and leader.replica_id == 0
        assert cluster.epoch == 1
        roles = [r.role for r in cluster.replicas]
        assert roles == ["leader", "standby", "standby"]

    def test_standbys_never_usurp_a_healthy_leader(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        dep.sim.run(until=0.1)
        assert dep.controller.leader_changes == 1
        assert dep.controller.active_leader().replica_id == 0

    def test_lease_config_validation(self, make_deployment):
        with pytest.raises(ValueError):
            make_deployment(2, controller_replicas=0)
        assert LeaseConfig(duration=2e-3).renew_period == pytest.approx(2e-3 / 3)

    def test_stop_cancels_all_replica_timers(self, make_deployment):
        """Satellite 6: teardown leaves no stray controller events — the
        sim queue drains to empty once in-flight work settles."""
        dep, _, _ = make_deployment(3, controller_replicas=3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.02)
        dep.shutdown()
        dep.sim.run(until=1.0)
        assert dep.sim.pending() == 0


class TestLeaderFailover:
    def test_crash_promotes_first_standby(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        cluster = dep.controller
        dep.sim.run(until=0.01)
        cluster.crash_replica(0)
        crash_at = dep.sim.now
        dep.sim.run(until=crash_at + cluster.failover_bound)
        leader = cluster.active_leader()
        assert leader is not None and leader.replica_id == 1
        assert cluster.epoch == 2
        assert cluster.leader_changes == 2
        activations = [e for e in cluster.leader_log if e[1] == "activate"]
        assert [e[2] for e in activations] == [0, 1]
        # takeover happened after the incumbent's lease provably ran out
        assert activations[1][0] >= crash_at + cluster.takeover_margin

    def test_failover_within_documented_bound(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        cluster = dep.controller
        dep.sim.run(until=0.01)
        cluster.crash_replica(0)
        crash_at = dep.sim.now
        dep.sim.run(until=0.1)
        takeover = next(
            t for (t, action, rid, _) in cluster.leader_log
            if action == "activate" and rid != 0
        )
        assert takeover - crash_at <= cluster.failover_bound + 1e-9

    def test_restored_replica_rejoins_as_standby(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        cluster = dep.controller
        dep.sim.run(until=0.01)
        cluster.crash_replica(0)
        dep.sim.run(until=0.05)
        successor = cluster.active_leader()
        assert successor.replica_id == 1
        cluster.restore_replica(0)
        dep.sim.run(until=0.15)
        # renewals from the incumbent keep replica 0 quiescent
        assert cluster.active_leader() is successor
        assert [r.replica_id for r in cluster.replicas if r.is_active_leader] == [1]

    def test_partitioned_leader_self_fences_then_standby_takes_over(
        self, make_deployment
    ):
        """A leader cut off from the fabric stops extending its lease
        (no beacons reach it) and self-fences; a connected standby takes
        over.  At no instant are both active."""
        dep, _, _ = make_deployment(3, controller_replicas=2)
        cluster = dep.controller
        suite = InvariantSuite(dep).start(period=0.2e-3)
        dep.sim.run(until=0.01)
        cluster.set_mgmt_partition(0, blocked=True)
        dep.sim.run(until=0.05)
        leader = cluster.active_leader()
        assert leader is not None and leader.replica_id == 1
        assert cluster.lease_expiries >= 1
        report = suite.finalize()
        assert report.ok, report.summary()
        assert report.checks["single_leader"] > 0

    def test_switch_failures_handled_by_successor(self, make_deployment):
        dep, _, _ = make_deployment(4, controller_replicas=2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s3")
        dep.sim.run(until=0.1)
        event = dep.controller.last_failure()
        assert event is not None and event.switch == "s3"
        assert event.epoch == 2  # detected under the successor's reign
        assert "s3" not in dep.chains[spec.group_id]

    def test_writes_commit_under_successor(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "before", 1)
        dep.sim.run(until=0.01)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.05)
        dep.manager("s1").register_write(spec, "after", 2)
        dep.sim.run(until=0.1)
        for store in dep.sro_stores(spec):
            assert store.get("before") == 1 and store.get("after") == 2


class TestEpochFencing:
    def _failover(self, make_deployment):
        dep, _, _ = make_deployment(3, controller_replicas=2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.05)
        assert dep.controller.active_leader().replica_id == 1
        return dep, spec

    def test_reconstruction_installs_new_epoch_at_switches(self, make_deployment):
        dep, _spec = self._failover(make_deployment)
        for name in dep.switch_names:
            assert dep.manager(name).controller_epoch == 2

    def test_stale_epoch_command_is_fenced(self, make_deployment):
        """A deposed leader's in-flight reconfiguration must not land
        after the successor has taken over."""
        dep, spec = self._failover(make_deployment)
        manager = dep.manager("s1")
        state = manager.sro.groups[spec.group_id]
        chain_before = state.chain
        stale = ControllerCommand(
            epoch=1,  # the deposed leader's reign
            kind="set_chain",
            group=spec.group_id,
            payload=chain_before.without("s2"),
        )
        assert manager.apply_controller_command(stale) is False
        assert manager.fenced_commands == 1
        assert state.chain == chain_before  # untouched

    def test_current_epoch_command_applies(self, make_deployment):
        dep, spec = self._failover(make_deployment)
        manager = dep.manager("s1")
        command = ControllerCommand(
            epoch=dep.controller.epoch,
            kind="set_catching_up",
            group=spec.group_id,
            payload=True,
        )
        assert manager.apply_controller_command(command) is True
        assert manager.sro.groups[spec.group_id].catching_up is True

    def test_unknown_command_kind_rejected(self, make_deployment):
        dep, spec = self._failover(make_deployment)
        bad = ControllerCommand(epoch=99, kind="reboot", group=spec.group_id)
        with pytest.raises(ValueError):
            dep.manager("s1").apply_controller_command(bad)


class TestReconstruction:
    def test_successor_learns_chain_state_from_switches(self, make_deployment):
        """The new leader's view (chains, failed set) is rebuilt from
        the fabric, not trusted from its own stale copy."""
        dep, _, _ = make_deployment(4, controller_replicas=2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s2")  # repaired under replica 0's reign
        dep.sim.run(until=0.02)
        assert "s2" not in dep.chains[spec.group_id]
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.06)
        successor = dep.controller.active_leader()
        assert successor.replica_id == 1
        # the dead switch never replied: the successor excised it anew
        assert "s2" in dep.controller._known_failed
        assert "s2" not in dep.chains[spec.group_id]
        # no switch holds a descriptor the successor does not know about
        suite = InvariantSuite(dep)
        suite.check_now()
        assert suite.report.ok, suite.report.summary()

    def test_reconstruction_latency_logged(self, make_deployment):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        dep, _, _ = make_deployment(3, controller_replicas=2, metrics=registry)
        dep.sim.run(until=0.005)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.05)
        entries = [e for e in dep.controller.leader_log if e[1] == "reconstructed"]
        assert len(entries) == 1
        latency = entries[0][3]
        assert latency == pytest.approx(3 * dep.controller.config_latency)
        histogram = registry.histogram(
            "controller.reconstruction_latency_seconds", "controller"
        )
        assert histogram.count == 1
        assert registry.counter("controller.leader_changes", "controller").value == 2

    def test_recover_request_queued_during_failover_window(self, make_deployment):
        """recover_switch with no active leader queues; the successor
        executes it after reconstruction instead of dropping it."""
        dep, _, _ = make_deployment(3, controller_replicas=2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=64))
        for i in range(5):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.021)  # dead zone: lease not yet expired over
        assert dep.controller.active_leader() is None
        assert dep.controller.recover_switch("s1") is None
        assert dep.controller.has_pending_recoveries()
        dep.sim.run(until=0.3)
        assert not dep.controller.has_pending_recoveries()
        state = dep.manager("s1").sro.groups[spec.group_id]
        assert state.catching_up is False
        assert all(state.store.get(f"k{i}") == i for i in range(5))


class TestFailoverMidRecovery:
    """The acceptance scenario: the leader dies while a snapshot
    transfer it initiated is still streaming.  The successor must find
    the target stranded in catch-up and re-drive the recovery, losing no
    committed write."""

    def _run(self, seed: int, make=None):
        from repro.core.manager import SwiShmemDeployment
        from repro.net.topology import Topology, build_full_mesh
        from repro.sim.engine import Simulator
        from repro.sim.random import SeededRng
        from repro.switch.pisa import PisaSwitch

        sim = Simulator()
        topo = Topology(sim, SeededRng(seed))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 4)
        dep = SwiShmemDeployment(sim, topo, switches, controller_replicas=3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        suite = InvariantSuite(dep).start(period=1e-3)
        for i in range(120):
            sim.schedule(
                i * 100e-6,
                lambda i=i: dep.manager("s0").register_write(spec, f"k{i}", i),
            )
        sim.run(until=0.05)
        fail_and_note(dep, "s1")
        sim.run(until=0.06)
        dep.controller.recover_switch("s1")
        # the snapshot starts after drain_delay (plus the snapshot-taking
        # control op); kill the leader while entries are still unacked
        kill_at = 0.06 + dep.controller.drain_delay + 30e-6
        at_kill = {}

        def kill_leader():
            transfer = dep.failover.transfer_for(spec.group_id, "s1")
            at_kill["mid_transfer"] = (
                transfer is not None
                and not transfer.done
                and len(transfer.unacked) > 0
            )
            dep.controller.crash_replica(0)

        sim.schedule_at(kill_at, kill_leader)
        # more committed writes while the transfer/failover is in flight
        for i in range(120, 125):
            sim.schedule_at(
                kill_at + (i - 119) * 200e-6,
                lambda i=i: dep.manager("s0").register_write(spec, f"k{i}", i),
            )
        sim.run(until=0.3)
        report = suite.finalize()
        digest = (
            dep.controller.leadership_digest(),
            tuple(round(t, 12) for t in suite.commit_times),
            tuple(sorted(store.items()) for store in dep.sro_stores(spec)),
            sim.events_processed,
        )
        return dep, spec, report, digest, at_kill

    def test_successor_completes_orphaned_recovery(self):
        dep, spec, report, _, at_kill = self._run(seed=11)
        # the crash really landed mid-transfer (entries still unacked)
        assert at_kill["mid_transfer"]
        successor = dep.controller.active_leader()
        assert successor is not None and successor.replica_id == 1
        redriven = [r for r in dep.controller.recoveries if r.redriven]
        assert redriven and redriven[0].switch == "s1"
        state = dep.manager("s1").sro.groups[spec.group_id]
        assert state.catching_up is False
        assert dep.chains[spec.group_id].read_tail == "s1"
        # zero committed-write loss, including writes during failover
        assert all(state.store.get(f"k{i}") == i for i in range(125))
        assert report.ok, report.summary()
        assert report.checks["single_leader"] > 0

    def test_same_seed_identical_histories(self):
        *_rest1, digest_1, _a1 = self._run(seed=12)
        *_rest2, digest_2, _a2 = self._run(seed=12)
        assert digest_1 == digest_2


class TestClusterAggregation:
    def test_event_lists_aggregate_across_replicas(self, make_deployment):
        dep, _, _ = make_deployment(4, controller_replicas=2)
        dep.sim.run(until=0.005)
        fail_and_note(dep, "s2")  # detected by replica 0
        dep.sim.run(until=0.01)
        dep.controller.crash_replica(0)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s3")  # detected by replica 1
        dep.sim.run(until=0.1)
        switches = [e.switch for e in dep.controller.failures]
        assert switches == ["s2", "s3"]  # sorted by detection time
        epochs = [e.epoch for e in dep.controller.failures]
        assert epochs == [1, 2]
