"""Tests for clocks and CRDTs, including property-based merge laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdt.clock import HybridClock, LamportClock, SynchronizedClock, Timestamp
from repro.crdt.gcounter import GCounter
from repro.crdt.lww import LwwRegister
from repro.crdt.orset import ORSet
from repro.crdt.pncounter import PNCounter


class TestTimestamp:
    def test_total_order(self):
        a = Timestamp(1.0, 0, 0)
        b = Timestamp(1.0, 0, 1)
        c = Timestamp(1.0, 1, 0)
        d = Timestamp(2.0, 0, 0)
        assert a < b < c < d

    def test_node_id_breaks_ties(self):
        assert Timestamp(1.0, 5, 1) > Timestamp(1.0, 5, 0)

    def test_frozen_and_hashable(self):
        stamp = Timestamp(1.0, 2, 3)
        assert hash(stamp) == hash(Timestamp(1.0, 2, 3))
        with pytest.raises(AttributeError):
            stamp.time = 2.0


class TestLamportClock:
    def test_monotone_local(self):
        clock = LamportClock(0)
        stamps = [clock.now() for _ in range(5)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5

    def test_witness_advances(self):
        clock = LamportClock(0)
        clock.witness(Timestamp(0.0, 100, 1))
        assert clock.now().logical == 101

    def test_witness_does_not_regress(self):
        clock = LamportClock(0)
        for _ in range(10):
            clock.now()
        clock.witness(Timestamp(0.0, 3, 1))
        assert clock.now().logical == 11


class TestSynchronizedClock:
    def test_reads_time_with_offset(self):
        time_holder = {"t": 5.0}
        clock = SynchronizedClock(0, lambda: time_holder["t"], offset=1e-9)
        assert clock.now().time == pytest.approx(5.0 + 1e-9)


class TestHybridClock:
    def test_strictly_monotone_with_frozen_physical_time(self):
        clock = HybridClock(0, lambda: 1.0)
        stamps = [clock.now() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_stamps_after_witness_are_greater(self):
        clock = HybridClock(0, lambda: 1.0)
        remote = Timestamp(50.0, 7, 1)
        clock.witness(remote)
        assert clock.now() > remote

    def test_physical_advance_resets_logical(self):
        holder = {"t": 1.0}
        clock = HybridClock(0, lambda: holder["t"])
        clock.now()
        clock.now()
        holder["t"] = 2.0
        stamp = clock.now()
        assert stamp.time == 2.0 and stamp.logical == 0


class TestGCounter:
    def test_increment_and_value(self):
        counter = GCounter(3, my_slot=0)
        counter.increment()
        counter.increment(4)
        assert counter.value() == 5
        assert counter.local_value() == 5

    def test_negative_increment_rejected(self):
        counter = GCounter(2, 0)
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_merge_takes_elementwise_max(self):
        a = GCounter(3, 0)
        b = GCounter(3, 1)
        a.increment(5)
        b.increment(3)
        changed = a.merge(b.vector())
        assert changed
        assert a.value() == 8
        assert not a.merge(b.vector())  # idempotent

    def test_merge_never_decreases(self):
        a = GCounter(2, 0)
        a.increment(10)
        a.merge([0, 0])
        assert a.value() == 10

    def test_apply_slot_incremental(self):
        a = GCounter(3, 0)
        assert a.apply_slot(2, 7) is True
        assert a.apply_slot(2, 5) is False  # stale
        assert a.value() == 7

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GCounter(0, 0)
        with pytest.raises(ValueError):
            GCounter(2, 5)

    def test_state_bytes(self):
        assert GCounter(4, 0, slot_width_bytes=8).state_bytes == 32

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 100)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_convergence_property(self, ops):
        """Replicas that exchange full states converge to the same value."""
        replicas = [GCounter(3, i) for i in range(3)]
        for slot, amount in ops:
            replicas[slot].increment(amount)
        # all-pairs merge, twice for propagation
        for _ in range(2):
            for a in replicas:
                for b in replicas:
                    a.merge(b.vector())
        values = {r.value() for r in replicas}
        assert len(values) == 1
        assert values.pop() == sum(amount for _, amount in ops)


class TestPNCounter:
    def test_increment_decrement(self):
        counter = PNCounter(2, 0)
        counter.increment(10)
        counter.decrement(3)
        assert counter.value() == 7

    def test_negative_amounts_rejected(self):
        counter = PNCounter(2, 0)
        with pytest.raises(ValueError):
            counter.increment(-1)
        with pytest.raises(ValueError):
            counter.decrement(-1)

    def test_merge_converges(self):
        a = PNCounter(2, 0)
        b = PNCounter(2, 1)
        a.increment(5)
        b.decrement(2)
        a.merge(b.state())
        b.merge(a.state())
        assert a.value() == b.value() == 3

    def test_value_can_go_negative(self):
        counter = PNCounter(2, 0)
        counter.decrement(5)
        assert counter.value() == -5


class TestLwwRegister:
    def test_write_and_read(self):
        cell = LwwRegister()
        cell.write("x", Timestamp(1.0, 0, 0))
        assert cell.value == "x"

    def test_local_write_must_advance(self):
        cell = LwwRegister()
        cell.write("x", Timestamp(2.0, 0, 0))
        with pytest.raises(ValueError):
            cell.write("y", Timestamp(1.0, 0, 0))

    def test_merge_newer_wins(self):
        cell = LwwRegister()
        cell.write("old", Timestamp(1.0, 0, 0))
        assert cell.merge("new", Timestamp(2.0, 0, 1)) is True
        assert cell.value == "new"

    def test_merge_stale_ignored(self):
        cell = LwwRegister()
        cell.write("current", Timestamp(5.0, 0, 0))
        assert cell.merge("stale", Timestamp(1.0, 0, 1)) is False
        assert cell.value == "current"

    def test_merge_idempotent(self):
        cell = LwwRegister()
        stamp = Timestamp(1.0, 0, 1)
        cell.merge("x", stamp)
        assert cell.merge("x", stamp) is False

    def test_tie_broken_by_node_id(self):
        a = LwwRegister()
        a.merge("from0", Timestamp(1.0, 0, 0))
        assert a.merge("from1", Timestamp(1.0, 0, 1)) is True
        assert a.value == "from1"

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.integers(0, 2), st.integers(0, 1000)),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_order_independent(self, writes):
        """Applying the same merge set in any order yields the same value.

        The logical component carries the write index so stamps are
        unique, as the hybrid clock guarantees for real writes.
        """
        stamps = [
            ("v%d" % i, Timestamp(t, i, node)) for i, (t, node, _) in enumerate(writes)
        ]
        forward = LwwRegister()
        backward = LwwRegister()
        for value, stamp in stamps:
            forward.merge(value, stamp)
        for value, stamp in reversed(stamps):
            backward.merge(value, stamp)
        assert forward.value == backward.value


class TestORSet:
    def test_add_and_contains(self):
        s = ORSet(0)
        s.add("sig1")
        assert "sig1" in s
        assert "sig2" not in s
        assert s.elements() == {"sig1"}

    def test_remove_observed(self):
        s = ORSet(0)
        s.add("x")
        assert s.remove("x") is True
        assert "x" not in s
        assert s.remove("x") is False

    def test_re_add_after_remove(self):
        s = ORSet(0)
        s.add("x")
        s.remove("x")
        s.add("x")
        assert "x" in s

    def test_concurrent_add_survives_remove(self):
        """The defining OR-Set property: add wins over concurrent remove."""
        a, b = ORSet(0), ORSet(1)
        a.add("x")
        b.merge(a.state())
        # concurrently: b removes x, a re-adds x (a's new tag unseen by b)
        b.remove("x")
        a.add("x")
        a.merge(b.state())
        b.merge(a.state())
        assert "x" in a and "x" in b

    def test_merge_converges(self):
        a, b = ORSet(0), ORSet(1)
        a.add("one")
        b.add("two")
        a.merge(b.state())
        b.merge(a.state())
        assert a.elements() == b.elements() == {"one", "two"}
        assert a == b

    def test_state_bytes_grows_with_tags(self):
        s = ORSet(0)
        assert s.state_bytes == 0
        s.add("x")
        assert s.state_bytes == ORSet.TAG_BYTES
        s.remove("x")
        assert s.state_bytes == 2 * ORSet.TAG_BYTES  # tombstone retained

    @given(st.lists(st.tuples(st.integers(0, 1), st.sampled_from("abc")), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative_property(self, ops):
        a, b = ORSet(0), ORSet(1)
        for who, element in ops:
            (a if who == 0 else b).add(element)
        merged_ab = ORSet(2)
        merged_ab.merge(a.state())
        merged_ab.merge(b.state())
        merged_ba = ORSet(3)
        merged_ba.merge(b.state())
        merged_ba.merge(a.state())
        assert merged_ab.elements() == merged_ba.elements()
