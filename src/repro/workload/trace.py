"""Synthetic packet traces: generate, save, load, replay.

The paper's authors would evaluate against data-center traces we do not
have; the substitution (DESIGN.md section 5) is deterministic synthetic
traces with controllable skew and mix.  Traces can be serialized to
JSON-lines files so an experiment's exact input can be archived next to
its results and replayed bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.net.endhost import EndHost
from repro.net.headers import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.net.packet import Packet, make_tcp_packet, make_udp_packet
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.workload.zipf import ZipfSampler

__all__ = ["TraceRecord", "PacketTrace", "generate_trace"]


@dataclass
class TraceRecord:
    """One packet in a trace."""

    time: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = PROTO_UDP
    payload_size: int = 256
    flags: int = 0
    payload_digest: Optional[int] = None

    def to_packet(self) -> Packet:
        if self.protocol == PROTO_TCP:
            packet = make_tcp_packet(
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
                flags=TcpFlags(self.flags),
                payload_size=self.payload_size,
            )
        else:
            packet = make_udp_packet(
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
                payload_size=self.payload_size,
            )
        packet.payload_digest = self.payload_digest
        return packet


class PacketTrace:
    """An ordered list of :class:`TraceRecord` with (de)serialization."""

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self.records: List[TraceRecord] = sorted(records, key=lambda r: r.time)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].time - self.records[0].time

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PacketTrace":
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(TraceRecord(**json.loads(line)))
        return cls(records)

    # ------------------------------------------------------------------
    def replay(
        self,
        sim: Simulator,
        hosts_by_ip: dict,
        fallback_host: Optional[EndHost] = None,
    ) -> int:
        """Schedule every record for injection at its source host.

        ``hosts_by_ip`` maps source IP -> :class:`EndHost`; records with
        unknown sources use ``fallback_host`` (spoofed-source traffic
        enters at a real ingress) or are skipped.  Returns the number of
        packets scheduled.
        """
        scheduled = 0
        for record in self.records:
            host = hosts_by_ip.get(record.src_ip, fallback_host)
            if host is None:
                continue
            sim.schedule_at(
                record.time,
                lambda r=record, h=host: h.inject(r.to_packet()),
                label="trace-replay",
            )
            scheduled += 1
        return scheduled


def generate_trace(
    rng: SeededRng,
    duration: float,
    pps: float,
    src_ips: Sequence[str],
    dst_ips: Sequence[str],
    zipf_s: float = 1.0,
    payload_size: int = 256,
    protocol: int = PROTO_UDP,
    stream: str = "trace",
) -> PacketTrace:
    """A Poisson-arrival trace with Zipf destination popularity."""
    if duration <= 0 or pps <= 0:
        raise ValueError("duration and rate must be positive")
    draw = rng.stream(stream)
    sampler = ZipfSampler(len(dst_ips), s=zipf_s, rng=rng.stream(f"{stream}:zipf"))
    records = []
    time = 0.0
    while True:
        time += draw.expovariate(pps)
        if time >= duration:
            break
        records.append(
            TraceRecord(
                time=time,
                src_ip=draw.choice(src_ips),
                dst_ip=dst_ips[sampler.sample()],
                src_port=draw.randint(1024, 65535),
                dst_port=443,
                protocol=protocol,
                payload_size=payload_size,
            )
        )
    return PacketTrace(records)
