"""Ready-made deployment scenarios for tests, benchmarks, and users.

Builds the paper's "dedicated NF cluster" deployment (section 3.2):
clients -> ingress -> {nf switches} -> egress -> servers, with the NF
cluster fully meshed for replication, plus internal (10.x) clients and
external/server (192.168.x) hosts so NAT/firewall direction rules work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.topology import Topology, build_nf_cluster
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

__all__ = ["NfWorld", "build_nf_world"]


@dataclass
class NfWorld:
    sim: Simulator
    rng: SeededRng
    topo: Topology
    book: AddressBook
    deployment: SwiShmemDeployment
    cluster: List[PisaSwitch]
    ingress: PisaSwitch
    egress: PisaSwitch
    clients: List[EndHost]
    servers: List[EndHost]

    @property
    def switches(self) -> List[PisaSwitch]:
        return self.deployment.switches

    def client_ips(self) -> List[str]:
        return [h.ip for h in self.clients]

    def server_ips(self) -> List[str]:
        return [h.ip for h in self.servers]


def build_nf_world(
    seed: int = 99,
    cluster_size: int = 3,
    clients: int = 4,
    servers: int = 4,
    loss_rate: float = 0.0,
    control_op_latency: float = 20e-6,
    responder_servers: bool = True,
    client_prefix: str = "10.0.0.",
    server_prefix: str = "192.168.0.",
    **deployment_kwargs,
) -> NfWorld:
    sim = Simulator()
    rng = SeededRng(seed)
    topo = Topology(sim, rng)
    book = AddressBook()
    counters = {"client": 0, "server": 0}

    def host_factory(name: str) -> EndHost:
        if name.startswith("client"):
            counters["client"] += 1
            ip = f"{client_prefix}{counters['client']}"
            return EndHost(name, sim, ip, book)
        counters["server"] += 1
        ip = f"{server_prefix}{counters['server']}"
        return EndHost(name, sim, ip, book, responder=responder_servers)

    def switch_factory(name: str) -> PisaSwitch:
        return PisaSwitch(name, sim, control_op_latency=control_op_latency)

    cluster, client_hosts, server_hosts, ingress, egress = build_nf_cluster(
        topo,
        switch_factory,
        host_factory,
        cluster_size=cluster_size,
        clients=clients,
        servers=servers,
        loss_rate=loss_rate,
    )
    deployment = SwiShmemDeployment(
        sim,
        topo,
        [ingress] + cluster + [egress],
        address_book=book,
        **deployment_kwargs,
    )
    return NfWorld(
        sim=sim,
        rng=rng,
        topo=topo,
        book=book,
        deployment=deployment,
        cluster=cluster,
        ingress=ingress,
        egress=egress,
        clients=client_hosts,
        servers=server_hosts,
    )
