"""The switch packet generator.

Tofino-class switches include a hardware packet generator that can emit
packets on a timer without any external stimulus.  Paper section 7 uses
it for EWO's periodic background synchronization: "a periodic background
task can be implemented using the switch's packet generator that
iterates over the register array, forming write update packets … and
forwarding each one to a randomly-selected switch in the replica group."

:class:`PacketGenerator` wraps a :class:`~repro.sim.engine.Process`
bound to a switch: the body runs on the data plane (no control-plane
cost) and stops automatically when the switch fails.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.engine import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.pisa import PisaSwitch

__all__ = ["PacketGenerator"]


class PacketGenerator:
    """Periodic data-plane packet generation on one switch."""

    def __init__(
        self,
        switch: "PisaSwitch",
        period: float,
        body: Callable[[], None],
        name: str = "pktgen",
        phase: Optional[float] = None,
    ) -> None:
        """``phase`` staggers the first firing (defaults to one period).

        Staggering matters: if every switch in a replica group fires its
        sync at the same instant, the loss correlation is unrealistic.
        Experiments pass per-switch phases drawn from the seeded RNG.
        """
        self.switch = switch
        self._process = Process(
            switch.sim,
            period,
            self._tick_body(body),
            name=f"{switch.name}:{name}",
            start_after=phase,
        )

    def _tick_body(self, body: Callable[[], None]) -> Callable[[], None]:
        def tick() -> None:
            if self.switch.failed:
                self._process.stop()
                return
            body()

        return tick

    def start(self) -> "PacketGenerator":
        self._process.start()
        return self

    def stop(self) -> None:
        self._process.stop()

    @property
    def ticks(self) -> int:
        return self._process.ticks

    @property
    def alive(self) -> bool:
        return self._process.alive
