"""Tests for the OR-Set-backed IPS signature store and link failures."""

from __future__ import annotations

import pytest

from repro.net.packet import make_udp_packet
from repro.nf.ips import IpsNF, packet_signature

from tests.nfworld import build_nf_world


def ips_orset_world(**kwargs):
    world = build_nf_world(responder_servers=False, **kwargs)
    instances = world.deployment.install_nf(
        IpsNF, block_threshold=3, signature_store="orset"
    )
    return world, instances


def malicious(src, dst, digest=666):
    packet = make_udp_packet(src, dst, 4000, 53, payload_size=64)
    packet.payload_digest = digest
    return packet


class TestIpsOrSetStore:
    def test_signature_blocks_traffic(self):
        world, instances = ips_orset_world()
        client, server = world.clients[0], world.servers[0]
        instances[0].add_signature(packet_signature(malicious(client.ip, server.ip)))
        world.sim.run(until=0.01)  # OR-Set delta propagates
        client.inject(malicious(client.ip, server.ip))
        world.sim.run(until=0.05)
        assert server.received == []
        assert sum(i.signature_hits for i in instances) == 1

    def test_signature_removal_unblocks(self):
        world, instances = ips_orset_world()
        client, server = world.clients[0], world.servers[0]
        sig = packet_signature(malicious(client.ip, server.ip))
        instances[0].add_signature(sig)
        world.sim.run(until=0.01)
        instances[2].remove_signature(sig)  # removed from another switch
        world.sim.run(until=0.02)
        client.inject(malicious(client.ip, server.ip))
        world.sim.run(until=0.05)
        assert len(server.received) == 1

    def test_concurrent_readd_survives_remove(self):
        """The OR-Set's distinguishing behavior, via the NF API."""
        world, instances = ips_orset_world()
        sig = 0xDEAD
        instances[0].add_signature(sig)
        world.sim.run(until=0.01)
        # concurrent: one operator removes, another re-adds
        instances[1].remove_signature(sig)
        instances[2].add_signature(sig)
        world.sim.run(until=0.05)
        spec = world.deployment.spec_by_name("ips_signatures")
        for name in world.deployment.switch_names:
            assert world.deployment.manager(name).register_set_contains(
                spec, "active", sig
            )

    def test_invalid_store_rejected(self):
        world = build_nf_world()
        with pytest.raises(ValueError):
            world.deployment.install_nf(IpsNF, signature_store="bogus")


class TestLinkFailureHandling:
    def test_controller_reroutes_around_down_link(self, make_deployment):
        dep, topo, _ = make_deployment(4)
        dep.sim.run(until=0.001)
        link = topo.link_between("s0", "s1")
        link.set_up(False)
        dep.sim.run(until=0.005)  # detector polls, recomputes routing
        assert dep.controller.link_events >= 1
        # s0 -> s1 now goes through a third switch
        hop = dep.routing.next_hop("s0", "s1")
        assert hop in ("s2", "s3")

    def test_link_recovery_restores_direct_path(self, make_deployment):
        dep, topo, _ = make_deployment(3)
        link = topo.link_between("s0", "s1")
        link.set_up(False)
        dep.sim.run(until=0.005)
        link.set_up(True)
        dep.sim.run(until=0.01)
        assert dep.routing.next_hop("s0", "s1") == "s1"

    def test_sro_survives_chain_link_failure(self, make_deployment):
        """A down link between chain members only lengthens the path:
        updates route around it and writes still commit."""
        dep, topo, _ = make_deployment(3)
        from repro.core.registers import Consistency, RegisterSpec

        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        topo.link_between("s0", "s1").set_up(False)
        dep.sim.run(until=0.005)
        dep.manager("s0").register_write(spec, "k", "v")
        dep.sim.run(until=0.1)
        assert all(s.get("k") == "v" for s in dep.sro_stores(spec))
