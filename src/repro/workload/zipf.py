"""Zipf-distributed sampling.

Network workloads are skewed: a few flows, keys, or destinations take
most of the traffic.  :class:`ZipfSampler` draws indices ``0..n-1`` with
probability proportional to ``1 / (rank+1)**s`` using inverse-CDF
sampling over a precomputed table, which is exact and fast for the
population sizes experiments use (up to ~1e6).
"""

from __future__ import annotations

import bisect
import random
import warnings
from typing import List, Sequence, TypeVar

from repro.sim.random import derive_seed

__all__ = ["ZipfSampler"]

T = TypeVar("T")


class ZipfSampler:
    """Deterministic Zipf(s) sampler over ``n`` ranks."""

    def __init__(self, n: int, s: float = 1.0, rng: random.Random = None) -> None:
        if n <= 0:
            raise ValueError("population size must be positive")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        if rng is None:
            # Two samplers built without an rng used to share
            # random.Random(0) draws, correlating supposedly independent
            # workloads in one scenario.  Callers should pass a stream
            # from SeededRng.stream(); the fallback stays only for old
            # call sites and now derives a named seed so it is at least
            # uncorrelated with other derived streams.
            warnings.warn(
                "ZipfSampler() without rng= is deprecated; pass a derived "
                "stream from repro.sim.random.SeededRng.stream()",
                DeprecationWarning,
                stacklevel=2,
            )
            rng = random.Random(derive_seed(0, "zipf-sampler-default"))
        self._rng = rng
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        """Draw one rank (0 is the most popular)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def pick(self, items: Sequence[T]) -> T:
        """Draw from a sequence whose order defines popularity rank."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        return items[self.sample()]

    def probability(self, rank: int) -> float:
        """The exact probability of a rank (for analytical baselines)."""
        if not 0 <= rank < self.n:
            raise IndexError("rank out of range")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous
