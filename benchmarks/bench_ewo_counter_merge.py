"""[P4] EWO merge semantics: CRDT counters vs last-writer-wins.

Paper section 6.2: "LWW provides eventual consistency, but until it
converges there may be inconsistent behavior … In some cases, it is
possible to merge updates more systematically … Counters are a natural
application … An increment-only counter can be implemented by
maintaining a vector of counter values, one per switch."

The experiment runs the same concurrent-increment workload against a
counter implemented two ways:

* a **COUNTER-mode** group (the paper's per-switch slot vector);
* a **LWW-mode** group where each switch naively writes ``local+1``
  (the strawman the CRDT fixes).

The CRDT counter converges to the exact total; the LWW counter loses
concurrent increments.  Monotonicity (a counter never observed to
decrease) is also checked — the CRDT guarantee the paper cites.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_pct, print_header, print_table

INCREMENTS = 90


@dataclass
class MergeResult:
    mode: str
    expected: int
    converged_value: int
    lost_fraction: float
    monotonic: bool


def run_mode(mode: EwoMode, seed: int = 6) -> MergeResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=1e-3)
    spec = deployment.declare(
        RegisterSpec("ctr", Consistency.EWO, ewo_mode=mode, capacity=16)
    )
    observed = {name: [] for name in deployment.switch_names}

    def bump(name: str) -> None:
        manager = deployment.manager(name)
        if mode is EwoMode.COUNTER:
            value = manager.register_increment(spec, "k", 1)
        else:
            # the LWW strawman: read-modify-write without coordination
            current = manager.register_read(spec, "k", 0)
            value = current + 1
            manager.register_write(spec, "k", value)
        observed[name].append(value)

    for i in range(INCREMENTS):
        # tight bursts maximize concurrency between switches
        sim.schedule((i // 3) * 30e-6, bump, f"s{i % 3}")
    sim.run(until=0.1)
    states = deployment.ewo_states(spec)
    assert all(state == states[0] for state in states), "replicas diverged"
    converged = states[0].get("k", 0)
    monotonic = all(
        all(b >= a for a, b in zip(series, series[1:]))
        for series in observed.values()
    )
    return MergeResult(
        mode=mode.value,
        expected=INCREMENTS,
        converged_value=converged,
        lost_fraction=1.0 - converged / INCREMENTS,
        monotonic=monotonic,
    )


def run_experiment():
    return run_mode(EwoMode.COUNTER), run_mode(EwoMode.LWW)


def report(crdt: MergeResult, lww: MergeResult) -> None:
    print_header(
        "P4",
        "Counter correctness: CRDT slot vector vs LWW read-modify-write",
        "CRDT counters give strong eventual consistency and monotonicity; "
        "LWW loses concurrent increments before converging",
    )
    print_table(
        ["merge mode", "increments applied", "converged value", "updates lost", "monotonic"],
        [
            (r.mode, r.expected, r.converged_value, fmt_pct(r.lost_fraction), r.monotonic)
            for r in (crdt, lww)
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_counter_merge_shape_matches_paper(benchmark):
    crdt, lww = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(crdt, lww)
    # The CRDT counter is exact and monotone.
    assert crdt.converged_value == INCREMENTS
    assert crdt.lost_fraction == 0.0
    assert crdt.monotonic
    # The LWW strawman loses a meaningful fraction of concurrent updates.
    assert lww.converged_value < INCREMENTS
    assert lww.lost_fraction > 0.2


@pytest.mark.benchmark(group="ewo-merge")
def test_benchmark_crdt_counter(benchmark):
    benchmark.pedantic(lambda: run_mode(EwoMode.COUNTER), rounds=1, iterations=1)
