"""[F4] Controller failover: lease duration vs. unavailability window.

The paper's section 6.3 control plane is a single point of failure; the
repo replicates it behind a simulated-time lease (protocols.election).
This experiment quantifies the cost of that protection: with the acting
leader fail-stopped, how long is the control plane headless — unable to
detect failures, repair chains, or drive recoveries — as a function of
the lease duration?

For each lease duration the run crashes the acting leader mid-reign and
additionally fail-stops one switch *inside* the leaderless window, the
worst case for detection: the crash can only be acted on once a standby
has taken over and reconstructed its view from the surviving switches.

Measured quantities, per lease duration:

* **leaderless window** — leader crash to successor activation, checked
  against the documented bound (lease run-out + takeover margin +
  stagger + reconstruction);
* **switch-failure handling latency** — switch crash (inside the
  window) to chain repair by the successor, versus the steady-state
  heartbeat detection bound;
* **data-plane stall** — SRO writes stall once the chain member dies
  (its repair must wait for the successor), so the worst commit gap
  tracks the leaderless window and is bounded by failover bound +
  detection bound — the true price of a longer lease;
* **at-most-one-active-leader** — the invariant suite's single-leader
  monitor samples throughout every sweep point and must stay green.

Run standalone::

    python benchmarks/bench_controller_failover.py [--leases 2 5 10]
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Tuple

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_us, print_header, print_table

from repro.chaos import InvariantSuite
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

WRITER = "s0"
REPLICAS = 3
#: The leader is killed mid-reign at this simulated time…
CRASH_AT = 20e-3
#: …and one switch dies inside the leaderless window shortly after.
SWITCH_CRASH_DELAY = 0.5e-3


@dataclass
class FailoverPoint:
    lease_ms: float
    replicas: int
    leaderless_window: float
    failover_bound: float
    reconstruction_latency: float
    switch_handling_latency: float
    detection_bound: float
    worst_commit_gap: float
    commits: int
    leader_changes: int
    single_leader_checks: int
    invariant_ok: bool
    invariant_violations: List[str]


def run_failover(lease_duration: float, seed: int = 1) -> FailoverPoint:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    nodes = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 4)
    dep = SwiShmemDeployment(
        sim,
        topo,
        nodes,
        controller_replicas=REPLICAS,
        lease_duration=lease_duration,
    )
    sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
    suite = InvariantSuite(dep).start(period=0.25e-3)
    cluster = dep.controller

    def workload() -> None:
        manager = dep.manager(WRITER)
        if not manager.switch.failed:
            manager.register_write(sro, f"k{len(suite.commit_times) % 16}", sim.now)
        if sim.now < 70e-3:
            sim.schedule(200e-6, workload)

    sim.schedule(1e-3, workload)
    sim.schedule_at(CRASH_AT, lambda: cluster.crash_replica(
        cluster.active_leader().replica_id
    ))
    switch_crash_at = CRASH_AT + SWITCH_CRASH_DELAY

    def crash_switch() -> None:
        cluster.note_failure_time("s3")
        dep.fail_switch("s3")

    sim.schedule_at(switch_crash_at, crash_switch)
    sim.run(until=0.1)
    report = suite.finalize()

    takeover = next(
        t for (t, action, rid, _) in cluster.leader_log
        if action == "activate" and t > CRASH_AT
    )
    reconstruction = next(
        detail for (t, action, rid, detail) in cluster.leader_log
        if action == "reconstructed" and t > CRASH_AT
    )
    # When was the mid-window switch crash acted on?  The successor
    # excises non-repliers during reconstruction (no FailureEvent), so
    # take the moment its chain lost the victim.
    handled_at = next(
        (e.detected_at for e in cluster.failures if e.switch == "s3"),
        None,
    )
    if handled_at is None:
        # excised during reconstruction: repair lands with its finish
        handled_at = takeover + reconstruction
    commit_gaps = [
        b - a for a, b in zip(suite.commit_times, suite.commit_times[1:])
    ]
    return FailoverPoint(
        lease_ms=lease_duration * 1e3,
        replicas=REPLICAS,
        leaderless_window=takeover - CRASH_AT,
        failover_bound=cluster.failover_bound,
        reconstruction_latency=reconstruction,
        switch_handling_latency=handled_at - switch_crash_at,
        detection_bound=cluster.detection_bound,
        worst_commit_gap=max(commit_gaps, default=0.0),
        commits=len(suite.commit_times),
        leader_changes=cluster.leader_changes,
        single_leader_checks=report.checks["single_leader"],
        invariant_ok=report.ok,
        invariant_violations=[str(v) for v in report.violations],
    )


def run_experiment(
    lease_durations: Tuple[float, ...] = (2e-3, 5e-3, 10e-3), seed: int = 1
) -> List[FailoverPoint]:
    return [run_failover(lease, seed=seed) for lease in lease_durations]


def report(results: List[FailoverPoint]) -> None:
    print_header(
        "F4",
        "controller failover: lease duration vs unavailability window",
        "a standby takes over within the lease-derived bound, the "
        "successor rebuilds its view from the switches, at most one "
        "leader is ever active, and the data plane never stalls",
    )
    rows = [
        (
            f"{r.lease_ms:.0f}ms",
            fmt_us(r.leaderless_window),
            fmt_us(r.failover_bound),
            fmt_us(r.reconstruction_latency),
            fmt_us(r.switch_handling_latency),
            fmt_us(r.detection_bound),
            fmt_us(r.worst_commit_gap),
            r.commits,
            r.single_leader_checks,
            "OK" if r.invariant_ok else f"{len(r.invariant_violations)} VIOLATIONS",
        )
        for r in results
    ]
    print_table(
        ["lease", "leaderless", "bound", "reconstruct", "switch handled",
         "detect bound", "worst gap", "commits", "1-leader checks",
         "invariants"],
        rows,
    )


def check_results(results: List[FailoverPoint]) -> None:
    assert len(results) >= 3
    for r in results:
        assert r.invariant_ok, (
            f"lease {r.lease_ms}ms: {r.invariant_violations}"
        )
        assert r.single_leader_checks > 0
        assert r.leader_changes == 2  # initial + exactly one takeover
        # the window is real but bounded by the documented formula
        assert 0 < r.leaderless_window <= r.failover_bound + 1e-9
        # the mid-window switch crash was handled, late but bounded:
        # worst case rides the failover, not the steady-state bound
        assert (
            r.switch_handling_latency
            <= r.failover_bound + r.detection_bound + 1e-9
        )
        # with a chain member dead mid-window, writes stall until the
        # successor repairs the chain — so the worst commit gap tracks
        # the leaderless window, bounded by failover + detection
        assert r.worst_commit_gap < r.failover_bound + r.detection_bound
        assert r.commits > 100
    # the window tracks the lease duration: longer leases, longer outages
    windows = [r.leaderless_window for r in results]
    assert windows == sorted(windows)
    assert windows[-1] > windows[0]


@pytest.mark.benchmark(group="experiment")
def test_controller_failover_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    check_results(results)


@pytest.mark.benchmark(group="controller")
def test_benchmark_controller_failover(benchmark):
    benchmark.pedantic(
        lambda: run_failover(5e-3), rounds=1, iterations=1
    )


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--leases", type=float, nargs="+", default=[2.0, 5.0, 10.0],
        help="lease durations to sweep, in milliseconds (default: 2 5 10)",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    durations = tuple(lease * 1e-3 for lease in args.leases)
    results = run_experiment(durations, seed=args.seed)
    report(results)
    failures = 0
    try:
        check_results(results)
    except AssertionError as exc:
        failures += 1
        print(f"FAIL: {exc}")
    emit_json(
        "F4",
        "controller failover: lease duration vs unavailability window",
        results,
        extra={"seed": args.seed, "replicas": REPLICAS},
    )
    print("RESULT:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
