"""TCP flow-level traffic generation.

Experiments drive the NFs with *flows*, not isolated packets: a flow is
a SYN, a number of data packets, and a FIN, all sharing one five-tuple.
:class:`FlowGenerator` schedules whole flows onto end hosts with Poisson
arrivals; flow sizes, destinations, inter-packet gaps, and payload
digests are drawn from seeded streams, so a given seed always produces
byte-identical traffic.

The generator emits through :class:`~repro.net.endhost.EndHost.inject`,
so traffic traverses the real links and switches — NFs see exactly what
a packet capture at their ingress would see.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.net.endhost import EndHost
from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng

__all__ = ["FlowSpec", "FlowGenerator", "inject_flow"]

_flow_ports = itertools.count(30000)


@dataclass
class FlowSpec:
    """One TCP flow to be injected."""

    client: EndHost
    dst_ip: str
    dst_port: int = 80
    src_port: int = field(default_factory=lambda: next(_flow_ports))
    data_packets: int = 8
    payload_size: int = 512
    inter_packet_gap: float = 20e-6
    payload_digest: Optional[int] = None
    start_at: float = 0.0

    @property
    def total_packets(self) -> int:
        """SYN + data + FIN."""
        return self.data_packets + 2


def inject_flow(sim: Simulator, flow: FlowSpec, on_done: Callable[[FlowSpec], None] = None) -> None:
    """Schedule every packet of one flow onto its client host."""

    def send(index: int) -> None:
        if index == 0:
            flags = TcpFlags.SYN
            size = 0
        elif index == flow.total_packets - 1:
            flags = TcpFlags.FIN | TcpFlags.ACK
            size = 0
        else:
            flags = TcpFlags.ACK | TcpFlags.PSH
            size = flow.payload_size
        packet = make_tcp_packet(
            src_ip=flow.client.ip,
            dst_ip=flow.dst_ip,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
            flags=flags,
            payload_size=size,
            seq=index,
        )
        packet.payload_digest = flow.payload_digest
        flow.client.inject(packet)
        if index + 1 < flow.total_packets:
            sim.schedule(flow.inter_packet_gap, send, index + 1, label="flow-pkt")
        elif on_done is not None:
            on_done(flow)

    sim.schedule_at(max(flow.start_at, sim.now), send, 0, label="flow-start")


class FlowGenerator:
    """Poisson flow arrivals over a set of clients and destinations."""

    def __init__(
        self,
        sim: Simulator,
        clients: Sequence[EndHost],
        dst_ips: Sequence[str],
        rng: SeededRng,
        flow_rate: float = 1000.0,
        data_packets: int = 8,
        payload_size: int = 512,
        inter_packet_gap: float = 20e-6,
        dst_port: int = 80,
        stream: str = "flows",
        port_base: int = 30000,
    ) -> None:
        if not clients or not dst_ips:
            raise ValueError("need at least one client and one destination")
        if flow_rate <= 0:
            raise ValueError("flow rate must be positive")
        self.sim = sim
        self.clients = list(clients)
        self.dst_ips = list(dst_ips)
        self.flow_rate = flow_rate
        self.data_packets = data_packets
        self.payload_size = payload_size
        self.inter_packet_gap = inter_packet_gap
        self.dst_port = dst_port
        self._rng = rng.stream(stream)
        #: Generator-local port counter: keeps runs reproducible even
        #: when other generators ran earlier in the same process (the
        #: module-global counter in :class:`FlowSpec` is only a default).
        self._next_port = port_base
        self.flows_started: List[FlowSpec] = []
        self.flows_completed = 0
        self._running = False

    def start(self, duration: float) -> "FlowGenerator":
        """Generate flows for ``duration`` simulated seconds from now."""
        self._running = True
        self._deadline = self.sim.now + duration
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        gap = self._rng.expovariate(self.flow_rate)
        self.sim.schedule(gap, self._launch, label="flowgen")

    def _launch(self) -> None:
        if not self._running or self.sim.now > self._deadline:
            self._running = False
            return
        self._next_port += 1
        flow = FlowSpec(
            client=self._rng.choice(self.clients),
            dst_ip=self._rng.choice(self.dst_ips),
            dst_port=self.dst_port,
            src_port=self._next_port,
            data_packets=self.data_packets,
            payload_size=self.payload_size,
            inter_packet_gap=self.inter_packet_gap,
            start_at=self.sim.now,
        )
        self.flows_started.append(flow)
        inject_flow(self.sim, flow, on_done=self._done)
        self._schedule_next()

    def _done(self, flow: FlowSpec) -> None:
        self.flows_completed += 1
