"""[N1] L4 load balancer: per-connection consistency under multipath.

Paper sections 3.2 and 4.1: sharding connection state per switch "falls
short if a flow is routed through a different switch, something that may
occur in various failure scenarios — or in the normal case, if recent
proposals for adaptive routing or multi-path TCP are adopted."

The experiment runs the LB on a leaf/spine fabric twice — with SwiShmem
shared state and with the sharded per-switch baseline — and re-routes
live flows mid-run by changing the ECMP salt (modeling adaptive
routing).  Measured: per-connection-consistency violations (a flow's
packets reaching more than one DIP) and mid-flow drops.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.net.topology import Topology, build_leaf_spine
from repro.nf.loadbalancer import LoadBalancerNF
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_pct, print_header, print_table

VIP = "100.0.0.100"
FLOWS = 40


@dataclass
class PccResult:
    mode: str
    flows: int
    pcc_violations: int
    mid_flow_drops: int
    delivered: int


def run_mode(shared_state: bool, seed: int = 44) -> PccResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    book = AddressBook()
    host_count = {"n": 0}

    def host_factory(name):
        host_count["n"] += 1
        return EndHost(name, sim, f"10.0.{name[1]}.{host_count['n']}", book)

    leaves, spines, hosts = build_leaf_spine(
        topo, lambda n: PisaSwitch(n, sim), host_factory,
        leaves=2, spines=2, hosts_per_leaf=2,
    )
    # "NF processing placed in switches in the network fabric" (3.2):
    # the LB runs on the spines — the switches ECMP actually varies —
    # while the leaves are plain L3 forwarders outside the deployment.
    deployment = SwiShmemDeployment(sim, topo, spines, address_book=book)
    for leaf in leaves:
        leaf.routing = deployment.routing
        leaf.address_book = book
    clients = [h for h in hosts if h.name.startswith("h0")]
    servers = [h for h in hosts if h.name.startswith("h1")]
    book.register(VIP, servers[0].name)
    instances = deployment.install_nf(
        LoadBalancerNF, vip=VIP, dips=[s.ip for s in servers], shared_state=shared_state
    )
    # open flows
    for i in range(FLOWS):
        client = clients[i % len(clients)]
        sim.schedule(
            i * 200e-6,
            lambda c=client, p=7000 + i: c.inject(
                make_tcp_packet(c.ip, VIP, p, 80, flags=TcpFlags.SYN)
            ),
        )
    sim.run(until=0.05)
    # adaptive routing event: re-salt ECMP, moving flows across spines
    deployment.routing.set_salt(999)
    # mid-flow data packets after the re-route
    for i in range(FLOWS):
        client = clients[i % len(clients)]
        for j in range(3):
            sim.schedule_at(
                sim.now + i * 100e-6 + j * 1e-3,
                lambda c=client, p=7000 + i: c.inject(
                    make_tcp_packet(c.ip, VIP, p, 80, payload_size=32)
                ),
            )
    sim.run(until=0.2)

    assignments = {}
    violations = set()
    delivered = 0
    for server in servers:
        for record in server.received:
            tup = record.packet.five_tuple()
            key = (tup.src_ip, tup.src_port)
            delivered += 1
            if key in assignments and assignments[key] != server.ip:
                violations.add(key)
            assignments.setdefault(key, server.ip)
    drops = sum(i.stats.dropped for i in instances)
    return PccResult(
        mode="SwiShmem shared" if shared_state else "sharded baseline",
        flows=FLOWS,
        pcc_violations=len(violations),
        mid_flow_drops=drops,
        delivered=delivered,
    )


def run_experiment():
    return run_mode(True), run_mode(False)


def report(shared: PccResult, sharded: PccResult) -> None:
    print_header(
        "N1",
        "LB per-connection consistency under adaptive re-routing",
        "sharded per-switch state breaks flows when routing moves them; "
        "SwiShmem keeps per-connection consistency from any switch",
    )
    print_table(
        ["state", "flows", "PCC violations", "mid-flow drops", "packets delivered"],
        [
            (r.mode, r.flows, r.pcc_violations, r.mid_flow_drops, r.delivered)
            for r in (shared, sharded)
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_lb_pcc_shape_matches_paper(benchmark):
    shared, sharded = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(shared, sharded)
    # SwiShmem: zero PCC violations, zero mid-flow drops.
    assert shared.pcc_violations == 0
    assert shared.mid_flow_drops == 0
    assert shared.delivered == FLOWS * 4  # SYN + 3 data each
    # The sharded baseline visibly breaks flows after the re-route.
    assert sharded.mid_flow_drops + sharded.pcc_violations > 0
    assert sharded.delivered < FLOWS * 4


@pytest.mark.benchmark(group="nf")
def test_benchmark_lb_shared(benchmark):
    benchmark.pedantic(lambda: run_mode(True), rounds=1, iterations=1)
