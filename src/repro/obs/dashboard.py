"""Text dashboard: render a registry snapshot for terminals and logs.

Benchmarks and the chaos soak call :func:`render` at the end of a run
to show live counters alongside their usual tables.  The renderer works
from the JSON-ready snapshot (not live instruments), so it can also
replay a snapshot loaded from a ``BENCH_*.json`` sidecar or a JSONL
export.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.metrics import MetricsRegistry

__all__ = ["render", "render_registry"]


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.6g}"
    return f"{int(value):,}"


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.3f}us"


def render(snapshot: Dict[str, List[Dict[str, Any]]], title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as a text dashboard."""
    width = 78
    lines = ["=" * width, f"  {title}", "=" * width]

    counters = snapshot.get("counters", [])
    if counters:
        lines.append(f"  {'counter':<44} {'node':<16} {'value':>14}")
        lines.append("  " + "-" * (width - 2))
        for record in counters:
            lines.append(
                f"  {record['name']:<44.44} {record['node']:<16.16} "
                f"{_fmt_value(record['value']):>14}"
            )

    gauges = snapshot.get("gauges", [])
    if gauges:
        lines.append("")
        lines.append(f"  {'gauge':<44} {'node':<16} {'value':>7} {'max':>6}")
        lines.append("  " + "-" * (width - 2))
        for record in gauges:
            lines.append(
                f"  {record['name']:<44.44} {record['node']:<16.16} "
                f"{_fmt_value(record['value']):>7} {_fmt_value(record['max']):>6}"
            )

    histograms = snapshot.get("histograms", [])
    if histograms:
        lines.append("")
        lines.append(
            f"  {'histogram':<34} {'node':<12} {'count':>7} "
            f"{'p50':>9} {'p99':>9} {'max':>9}"
        )
        lines.append("  " + "-" * (width - 2))
        for record in histograms:
            lines.append(
                f"  {record['name']:<34.34} {record['node']:<12.12} "
                f"{record['count']:>7} {_fmt_seconds(record['p50']):>9} "
                f"{_fmt_seconds(record['p99']):>9} {_fmt_seconds(record['max']):>9}"
            )

    if len(lines) == 3:
        lines.append("  (no instruments recorded)")
    lines.append("=" * width)
    return "\n".join(lines)


def render_registry(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Convenience wrapper: snapshot + render in one call."""
    return render(registry.snapshot(), title=title)
