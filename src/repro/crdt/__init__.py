"""Conflict-free replicated data types and the clocks that order them."""

from repro.crdt.clock import HybridClock, LamportClock, SynchronizedClock, Timestamp
from repro.crdt.gcounter import GCounter
from repro.crdt.lww import LwwRegister
from repro.crdt.orset import ORSet
from repro.crdt.pncounter import PNCounter

__all__ = [
    "HybridClock",
    "LamportClock",
    "SynchronizedClock",
    "Timestamp",
    "GCounter",
    "LwwRegister",
    "ORSet",
    "PNCounter",
]
