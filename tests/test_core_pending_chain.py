"""Tests for the pending-bit table and chain descriptors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import ChainDescriptor
from repro.core.pending import PendingTable, stable_slot_hash
from repro.switch.memory import MemoryBudget


class TestSlotHash:
    def test_deterministic_across_instances(self):
        assert stable_slot_hash(("k", 1), 64) == stable_slot_hash(("k", 1), 64)

    def test_in_range(self):
        for key in range(100):
            assert 0 <= stable_slot_hash(key, 7) < 7

    def test_spreads_keys(self):
        slots = {stable_slot_hash(i, 64) for i in range(1000)}
        assert len(slots) > 48  # nearly all slots hit


class TestPendingTable:
    def _table(self, slots=8):
        return PendingTable("t", slots, MemoryBudget(1 << 20))

    def test_memory_charged(self):
        budget = MemoryBudget(1 << 20)
        table = PendingTable("t", 100, budget)
        assert budget.used_bytes == table.state_bytes == 1300

    def test_sequencing_monotone(self):
        table = self._table()
        assert table.assign_seq(0) == 1
        assert table.assign_seq(0) == 2
        assert table.assign_seq(1) == 1  # independent per slot

    def test_in_order_application(self):
        table = self._table()
        assert table.is_next_in_order(0, 1)
        table.mark_applied(0, 1)
        assert table.applied_seq(0) == 1
        assert not table.is_next_in_order(0, 3)
        with pytest.raises(ValueError):
            table.mark_applied(0, 3)

    def test_mark_applied_advances_sequencer(self):
        """A member promoted to head must not reuse sequence numbers."""
        table = self._table()
        table.force_applied(0, 10)
        assert table.assign_seq(0) == 11

    def test_force_applied_jumps_forward_only(self):
        table = self._table()
        table.force_applied(0, 5)
        table.force_applied(0, 3)  # stale snapshot entry: no regression
        assert table.applied_seq(0) == 5

    def test_pending_bit_lifecycle(self):
        table = self._table()
        table.set_pending(0, 1)
        assert table.is_pending(0)
        assert table.clear_pending(0, 1) is True
        assert not table.is_pending(0)

    def test_old_ack_does_not_clear_newer_pending(self):
        table = self._table()
        table.set_pending(0, 1)
        table.set_pending(0, 2)  # a second write in flight
        assert table.clear_pending(0, 1) is False  # ack for the first
        assert table.is_pending(0)
        assert table.clear_pending(0, 2) is True

    def test_clear_idle_slot_is_noop(self):
        table = self._table()
        assert table.clear_pending(0, 99) is False

    def test_pending_count(self):
        table = self._table()
        table.set_pending(0, 1)
        table.set_pending(3, 1)
        assert table.pending_count() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PendingTable("t", 0, MemoryBudget(100))

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_shared_slots_agree_across_replicas(self, keys):
        """Every replica maps a key to the same slot (protocol soundness)."""
        a = PendingTable("a", 16, MemoryBudget(1 << 20))
        b = PendingTable("b", 16, MemoryBudget(1 << 20))
        assert [a.slot_of(k) for k in keys] == [b.slot_of(k) for k in keys]


class TestChainDescriptor:
    def _chain(self):
        return ChainDescriptor(chain_id=1, members=("s0", "s1", "s2"))

    def test_roles(self):
        chain = self._chain()
        assert chain.head == "s0"
        assert chain.ack_tail == "s2"
        assert chain.read_tail == "s2"
        assert len(chain) == 3
        assert "s1" in chain and "zz" not in chain

    def test_successor_predecessor(self):
        chain = self._chain()
        assert chain.successor("s0") == "s1"
        assert chain.successor("s2") is None
        assert chain.predecessor("s1") == "s0"
        assert chain.predecessor("s0") is None

    def test_without_removes_and_bumps_version(self):
        chain = self._chain()
        repaired = chain.without("s1")
        assert repaired.members == ("s0", "s2")
        assert repaired.version == chain.version + 1
        assert chain.members == ("s0", "s1", "s2")  # immutable original

    def test_without_nonmember_returns_self(self):
        chain = self._chain()
        assert chain.without("zz") is chain

    def test_without_head_promotes_next(self):
        chain = self._chain()
        assert chain.without("s0").head == "s1"

    def test_append_pins_old_read_tail(self):
        chain = self._chain()
        appended = chain.with_appended("s9")
        assert appended.members == ("s0", "s1", "s2", "s9")
        assert appended.ack_tail == "s9"  # acks from the new last member
        assert appended.read_tail == "s2"  # reads stay at the old tail

    def test_promoted_moves_read_tail(self):
        chain = self._chain().with_appended("s9")
        promoted = chain.promoted()
        assert promoted.read_tail == "s9"
        assert promoted.version == chain.version + 1

    def test_append_duplicate_rejected(self):
        with pytest.raises(ValueError):
            self._chain().with_appended("s1")

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainDescriptor(1, ())
        with pytest.raises(ValueError):
            ChainDescriptor(1, ("a", "a"))
        with pytest.raises(ValueError):
            ChainDescriptor(1, ("a",), read_tail_index=5)

    def test_single_member_chain(self):
        chain = ChainDescriptor(1, ("only",))
        assert chain.head == chain.ack_tail == chain.read_tail == "only"
