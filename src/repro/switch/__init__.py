"""PISA switch substrate: pipeline, stateful objects, control plane, memory."""

from repro.switch.control import ControlPlaneAgent, DEFAULT_OP_LATENCY
from repro.switch.memory import (
    DEFAULT_SWITCH_MEMORY_BYTES,
    MemoryBudget,
    OutOfSwitchMemory,
)
from repro.switch.objects import Counter, MatchTable, Meter, MeterColor, RegisterArray
from repro.switch.pipeline import Pipeline, Stage, StageAction
from repro.switch.pisa import PIPELINE_LATENCY, PisaSwitch, SwitchStats
from repro.switch.pktgen import PacketGenerator

__all__ = [
    "ControlPlaneAgent",
    "DEFAULT_OP_LATENCY",
    "DEFAULT_SWITCH_MEMORY_BYTES",
    "MemoryBudget",
    "OutOfSwitchMemory",
    "Counter",
    "MatchTable",
    "Meter",
    "MeterColor",
    "RegisterArray",
    "Pipeline",
    "Stage",
    "StageAction",
    "PIPELINE_LATENCY",
    "PisaSwitch",
    "SwitchStats",
    "PacketGenerator",
]
