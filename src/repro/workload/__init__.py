"""Deterministic traffic generation: flows, Zipf skew, attacks, traces."""

from repro.workload.attack import AttackScenario
from repro.workload.flows import FlowGenerator, FlowSpec, inject_flow
from repro.workload.trace import PacketTrace, TraceRecord, generate_trace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "AttackScenario",
    "FlowGenerator",
    "FlowSpec",
    "inject_flow",
    "PacketTrace",
    "TraceRecord",
    "generate_trace",
    "ZipfSampler",
]
